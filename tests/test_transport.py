"""The socket transport: codec, reconnect policy, lockstep loopback.

Two-process integration (real ``repro net`` subprocesses, SIGKILL,
``--resume``) lives in ``tests/test_netrun.py``; this file covers the
transport's in-process surface — the wire codec, the deterministic
reconnect schedule, the process-fault one-shot latches, and a
two-transport loopback over a real localhost socket pair driven from
two threads.
"""

import threading

import pytest

from repro.mpc.transcript import ALICE, BOB
from repro.runtime.aborts import TransportAbort
from repro.runtime.framing import Frame, frame_digest
from repro.runtime.supervisor import RetryPolicy
from repro.runtime.transport import (
    _MSG_FRAME,
    _MSG_HEADER,
    WIRE_MAGIC,
    ProcessFaults,
    ReconnectPolicy,
    SocketTransport,
    _encode,
    _frame_from_payload,
    _frame_payload,
    free_port,
)


def make_frame(seq, sender=ALICE, n_bytes=96, label="unit/test"):
    return Frame(
        seq=seq,
        sender=sender,
        n_bytes=n_bytes,
        length=n_bytes,
        label=label,
        digest=frame_digest(seq, sender, n_bytes, label),
    )


class TestCodec:
    def test_frame_payload_round_trip(self):
        frame = make_frame(7, BOB, 1234, "semijoin/orders")
        assert _frame_from_payload(_frame_payload(frame)) == frame

    def test_encode_header_shape(self):
        payload = _frame_payload(make_frame(0))
        blob = _encode(_MSG_FRAME, payload)
        magic, msg_type, length = _MSG_HEADER.unpack_from(blob)
        assert magic == WIRE_MAGIC
        assert msg_type == _MSG_FRAME
        assert length == len(payload)
        assert blob[_MSG_HEADER.size:] == payload

    def test_digest_survives_hex_round_trip(self):
        frame = make_frame(3, label="reduce/agg")
        again = _frame_from_payload(_frame_payload(frame))
        assert again.digest == frame.digest
        assert again.wire_bytes == frame.wire_bytes


class TestReconnectPolicy:
    def test_schedule_is_deterministic(self):
        policy = ReconnectPolicy()
        a = policy.schedule(seed=7, reconnect_index=0)
        b = policy.schedule(seed=7, reconnect_index=0)
        assert a == b

    def test_schedule_varies_with_seed_and_episode(self):
        policy = ReconnectPolicy()
        assert policy.schedule(7, 0) != policy.schedule(8, 0)
        assert policy.schedule(7, 0) != policy.schedule(7, 1)

    def test_capped_exponential_envelope(self):
        policy = ReconnectPolicy(
            max_attempts=8, base_delay_s=0.05, max_delay_s=0.4,
            jitter_frac=0.25,
        )
        delays = policy.schedule(seed=1, reconnect_index=0)
        assert len(delays) == 8
        for i, d in enumerate(delays):
            base = min(0.05 * (2 ** i), 0.4)
            assert base <= d <= base * 1.25

    def test_zero_jitter_is_exact(self):
        policy = ReconnectPolicy(
            max_attempts=4, base_delay_s=0.1, max_delay_s=0.4,
            jitter_frac=0.0,
        )
        assert policy.schedule(3, 0) == [0.1, 0.2, 0.4, 0.4]


class TestRetryJitter:
    """Satellite: the supervisor's backoff jitter (docs/ROBUSTNESS.md)."""

    def test_base_backoff_schedule_unchanged(self):
        # Pinned: the deterministic base the session tests rely on.
        policy = RetryPolicy(max_attempts=6, max_backoff_ticks=64)
        assert [policy.backoff(a) for a in range(1, 6)] == [
            8, 16, 32, 64, 64,
        ]

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy()
        for attempt in (1, 2, 3):
            for step_id in (0, 5, 11):
                j = policy.jitter(attempt, seed=7, step_id=step_id)
                assert j == policy.jitter(attempt, 7, step_id)
                assert 0 <= j <= policy.jitter_ticks
                total = policy.jittered_backoff(attempt, 7, step_id)
                assert total == policy.backoff(attempt) + j

    def test_jitter_decorrelates_steps(self):
        policy = RetryPolicy()
        draws = {
            policy.jitter(1, seed=7, step_id=s) for s in range(64)
        }
        assert len(draws) > 1  # not a constant schedule

    def test_zero_jitter_ticks_disables(self):
        policy = RetryPolicy(jitter_ticks=0)
        assert policy.jitter(1, 7, 0) == 0
        assert policy.jittered_backoff(2, 7, 0) == policy.backoff(2)


class TestProcessFaults:
    def test_wire_faults_fire_once(self):
        fired = []

        class FakeTransport:
            def force_drop(self):
                fired.append("drop")

        faults = ProcessFaults(drop_at_wire=3)
        t = FakeTransport()
        for wire in range(6):
            faults.at_wire(wire, t)
        faults.at_wire(3, t)  # replay of the same index: latched
        assert fired == ["drop"]

    def test_stall_is_bounded(self):
        faults = ProcessFaults(stall_at_wire=0, stall_ms=1)
        faults.at_wire(0, None)  # must not need a transport
        faults.at_wire(0, None)

    def test_node_faults_ignore_other_nodes(self):
        # kill_at_node SIGKILLs the *current* process, so only probe
        # the non-matching path here (subprocess coverage is in
        # test_netrun.py).
        faults = ProcessFaults(kill_at_node=99)
        faults.at_node(0)
        faults.at_node(98)


class TestFreePort:
    def test_free_port_is_bindable(self):
        import socket

        port = free_port()
        assert 0 < port < 65536
        with socket.socket() as s:
            s.bind(("127.0.0.1", port))


class _SessionStub:
    """The sliver of Session the transport reads: the per-sender
    delivered-frame counters (``repro net`` attaches the real thing)."""

    def __init__(self):
        self._expected = {ALICE: 0, BOB: 0}
        self.wire = None
        self.node = None


class TestLoopback:
    """Both roles in one process, over a real localhost socket."""

    def run_party(self, role, port, frames, results, faults=None):
        transport = SocketTransport(
            role=role,
            session_id="loopback-test",
            listen=("127.0.0.1", port) if role == ALICE else None,
            connect=("127.0.0.1", port) if role == BOB else None,
            faults=faults,
            seed=7,
            heartbeat_s=0.1,
            idle_timeout_s=5.0,
            exchange_deadline_s=20.0,
        )
        transport.attach(_SessionStub())
        try:
            transport.start()
            for frame in frames:
                transport.exchange(frame)
                # Mirror Session._deliver's post-exchange bookkeeping.
                transport.session._expected[frame.sender] += 1
            transport.finish_barrier(timeout_s=5.0)
            results[role] = dict(transport.stats)
        except BaseException as exc:  # pragma: no cover - surfaced below
            results[role] = exc
        finally:
            transport.close()

    def drive(self, frames, faults_by_role=None):
        port = free_port()
        results = {}
        faults_by_role = faults_by_role or {}
        threads = [
            threading.Thread(
                target=self.run_party,
                args=(role, port, frames, results),
                kwargs={"faults": faults_by_role.get(role)},
            )
            for role in (ALICE, BOB)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        for role in (ALICE, BOB):
            if isinstance(results.get(role), BaseException):
                raise results[role]
        return results

    def mirrored_frames(self, n=10):
        # Frame seqs are per-sender (Session._seq), not global.
        frames, per_sender = [], {ALICE: 0, BOB: 0}
        for i in range(n):
            sender = ALICE if i % 2 == 0 else BOB
            frames.append(
                make_frame(per_sender[sender], sender, 64 + i)
            )
            per_sender[sender] += 1
        return frames

    def test_clean_exchange(self):
        frames = self.mirrored_frames(10)
        results = self.drive(frames)
        assert results[ALICE]["frames_sent"] == 5
        assert results[ALICE]["frames_received"] == 5
        assert results[BOB]["frames_sent"] == 5
        assert results[BOB]["frames_received"] == 5
        assert results[ALICE]["reconnects"] == 0

    def test_drop_mid_stream_reconnects(self):
        frames = self.mirrored_frames(10)
        results = self.drive(
            frames,
            faults_by_role={BOB: ProcessFaults(drop_at_wire=4)},
        )
        # The drop is recovered transparently: both sides complete,
        # at least one reconnect episode ran, outbox replay covered
        # anything lost in flight.
        assert results[ALICE]["frames_received"] == 5
        assert results[BOB]["frames_received"] == 5
        assert (
            results[ALICE]["reconnects"] + results[BOB]["reconnects"]
            >= 1
        )

    def test_divergent_mirror_aborts(self):
        port = free_port()
        results = {}
        good = self.mirrored_frames(6)
        evil = list(good)
        # Bob's mirror disagrees about the size of bob's second frame.
        evil[3] = make_frame(good[3].seq, BOB, n_bytes=4096)
        ta = threading.Thread(
            target=self.run_party, args=(ALICE, port, good, results)
        )
        tb = threading.Thread(
            target=self.run_party, args=(BOB, port, evil, results)
        )
        ta.start()
        tb.start()
        ta.join(timeout=30.0)
        tb.join(timeout=30.0)
        aborts = [
            r for r in results.values()
            if isinstance(r, TransportAbort)
        ]
        assert aborts, f"expected a TransportAbort, got {results}"
        assert any(a.reason == "peer-divergence" for a in aborts)
