"""Boolean-semiring queries: set semantics via ({0,1}, OR, AND).

The paper (Section 3.1) notes the Boolean semiring is handled by
mapping True/False to 1/0 — the protocol itself runs over Z_{2^ell};
set-semantics *existence* queries come out as nonzero-ness.
"""

import numpy as np

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import JoinAggregateQuery
from repro.relalg import (
    AnnotatedRelation,
    BooleanSemiring,
    IntegerRing,
    aggregate,
    join,
)

from .conftest import TEST_GROUP_BITS


class TestPlaintextBooleanSemiring:
    def test_join_is_conjunction(self):
        b = BooleanSemiring()
        r1 = AnnotatedRelation(("a", "x"), [(1, 1), (2, 2)], [1, 0], b)
        r2 = AnnotatedRelation(("a", "y"), [(1, 5), (2, 6)], [1, 1], b)
        out = join(r1, r2)
        assert out.to_dict() == {(1, 1, 5): 1}  # (2,...) killed by 0

    def test_aggregate_is_disjunction(self):
        b = BooleanSemiring()
        r = AnnotatedRelation(
            ("g", "x"), [(1, 1), (1, 2), (2, 1)], [0, 1, 0], b
        )
        out = aggregate(r, ("g",))
        assert out.to_dict() == {(1,): 1}

    def test_no_overflow_under_or(self):
        b = BooleanSemiring()
        r = AnnotatedRelation(
            ("g",), [(1,)] * 10, [1] * 10, b
        )
        assert aggregate(r, ("g",)).to_dict() == {(1,): 1}


class TestSecureExistenceQuery:
    def test_which_groups_exist(self):
        """'Does any joining row exist per group?' — run over the ring
        and read nonzero-ness, the standard embedding."""
        ring = IntegerRing(32)
        r1 = AnnotatedRelation(
            ("g", "k"), [(1, 10), (2, 20), (3, 30)], [1, 1, 1], ring
        )
        r2 = AnnotatedRelation(
            ("k",), [(10,), (30,)], [1, 1], ring
        )
        q = (
            JoinAggregateQuery(output=["g"])
            .add_relation("R1", r1, owner=ALICE)
            .add_relation("R2", r2, owner=BOB)
        )
        engine = Engine(Context(Mode.SIMULATED, seed=1), TEST_GROUP_BITS)
        result, _ = q.run_secure(engine)
        exists = {t[0] for t, v in result if v != 0}
        assert exists == {1, 3}
