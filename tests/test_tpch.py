"""TPC-H substrate: the generator's invariants and all five queries."""

import numpy as np
import pytest

from repro.mpc import Engine, Mode
from repro.tpch import (
    PREPARED,
    date_ordinal,
    generate,
    prepare_q10,
    prepare_q18,
    prepare_q3,
    prepare_q8,
    prepare_q9,
    to_signed,
    year_of_ordinals,
)


@pytest.fixture(scope="module")
def dataset():
    return generate(1)


class TestDatagen:
    def test_row_count_ratios(self, dataset):
        assert dataset["customer"].n_rows == 150
        assert dataset["orders"].n_rows == 1500
        assert dataset["part"].n_rows == 200
        assert dataset["supplier"].n_rows == 10
        assert dataset["partsupp"].n_rows == 800
        assert dataset["nation"].n_rows == 25
        assert dataset["region"].n_rows == 5
        # ~4 lineitems per order
        assert 1500 * 2 < dataset["lineitem"].n_rows < 1500 * 7

    def test_deterministic(self):
        d1, d2 = generate(1, seed=3), generate(1, seed=3)
        assert (
            d1["orders"].column("o_orderdate")
            == d2["orders"].column("o_orderdate")
        ).all()
        d3 = generate(1, seed=4)
        assert not (
            d1["orders"].column("o_orderdate")
            == d3["orders"].column("o_orderdate")
        ).all()

    def test_referential_integrity(self, dataset):
        custkeys = set(
            int(k) for k in dataset["customer"].column("c_custkey")
        )
        assert all(
            int(k) in custkeys
            for k in dataset["orders"].column("o_custkey")
        )
        orderkeys = set(
            int(k) for k in dataset["orders"].column("o_orderkey")
        )
        assert all(
            int(k) in orderkeys
            for k in dataset["lineitem"].column("l_orderkey")
        )

    def test_lineitem_partsupp_consistency(self, dataset):
        """Every lineitem's (partkey, suppkey) exists in partsupp — the
        invariant Q9's join relies on."""
        ps = set(
            zip(
                (int(k) for k in dataset["partsupp"].column("ps_partkey")),
                (int(k) for k in dataset["partsupp"].column("ps_suppkey")),
            )
        )
        li = set(
            zip(
                (int(k) for k in dataset["lineitem"].column("l_partkey")),
                (int(k) for k in dataset["lineitem"].column("l_suppkey")),
            )
        )
        assert li <= ps

    def test_dates_in_tpch_range(self, dataset):
        lo, hi = date_ordinal("1992-01-01"), date_ordinal("1998-08-02")
        od = np.asarray(dataset["orders"].column("o_orderdate"))
        assert (od >= lo).all() and (od <= hi).all()
        sd = np.asarray(dataset["lineitem"].column("l_shipdate"))
        assert (sd > lo).all()

    def test_o_year_column_consistent(self, dataset):
        od = np.asarray(dataset["orders"].column("o_orderdate"))
        assert (
            np.asarray(dataset["orders"].column("o_year"))
            == year_of_ordinals(od)
        ).all()

    def test_scaling(self):
        d3 = generate(3)
        assert d3["customer"].n_rows == 450
        assert d3["orders"].n_rows == 4500


class TestHelpers:
    def test_to_signed(self):
        assert to_signed(5, 32) == 5
        assert to_signed(2**32 - 1, 32) == -1
        assert to_signed(2**31, 32) == -(2**31)

    def test_date_ordinal_comparisons(self):
        assert date_ordinal("1995-03-13") > date_ordinal("1995-03-12")


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(PREPARED))
def test_queries_secure_equals_plain(name, dataset):
    if name == "Q9":
        query = PREPARED[name](dataset, nations=[8, 14])
    else:
        query = PREPARED[name](dataset)
    plain, _ = query.run_plain()
    ctx = query.make_context(Mode.SIMULATED, seed=5)
    result, stats = query.run_secure(Engine(ctx))
    assert result.semantically_equal(plain), name
    assert stats.total_bytes > 0


class TestQueryDetails:
    def test_q3_group_keys_are_order_attributes(self, dataset):
        q = prepare_q3(dataset)
        plain, _ = q.run_plain()
        assert set(plain.attributes) == {
            "orderkey", "o_orderdate", "o_shippriority",
        }

    def test_q3_revenue_positive(self, dataset):
        plain, _ = prepare_q3(dataset).run_plain()
        assert all(v > 0 for _, v in plain)

    def test_q10_matches_manual_computation(self, dataset):
        q = prepare_q10(dataset)
        plain, _ = q.run_plain()
        lo, hi = date_ordinal("1993-08-01"), date_ordinal("1993-11-01")
        orders = dataset["orders"]
        lineitem = dataset["lineitem"]
        cust_of_order = {}
        for ok, ck, od in zip(
            orders.column("o_orderkey"),
            orders.column("o_custkey"),
            orders.column("o_orderdate"),
        ):
            if lo <= od < hi:
                cust_of_order[int(ok)] = int(ck)
        revenue = {}
        for ok, ep, disc, rf in zip(
            lineitem.column("l_orderkey"),
            lineitem.column("l_extendedprice"),
            lineitem.column("l_discount"),
            lineitem.column("l_returnflag"),
        ):
            if rf == "R" and int(ok) in cust_of_order:
                ck = cust_of_order[int(ok)]
                revenue[ck] = revenue.get(ck, 0) + int(ep) * (
                    100 - int(disc)
                )
        got = {t[0]: v for t, v in plain}
        assert got == {k: v for k, v in revenue.items() if v}

    def test_q18_having_threshold(self, dataset):
        plain, _ = prepare_q18(dataset).run_plain()
        for row, qty in plain:
            assert qty > 300

    def test_q9_amount_sign_handling(self, dataset):
        q = prepare_q9(dataset, nations=[8])
        plain, _ = q.run_plain()
        # cost can exceed revenue: signed interpretation must be sane
        for _, v in plain:
            signed = to_signed(v, q.ell)
            assert abs(signed) < 2 ** (q.ell - 1)

    def test_effective_bytes_positive_and_monotone(self):
        small = prepare_q3(generate(1))
        large = prepare_q3(generate(3))
        assert 0 < small.effective_bytes < large.effective_bytes

    def test_ell_mismatch_rejected(self, dataset):
        q8 = prepare_q8(dataset)
        wrong = prepare_q3(dataset).make_context(Mode.SIMULATED)
        with pytest.raises(ValueError):
            q8.run_secure(Engine(wrong))
