"""Differential tests: vectorised batch kernels vs the retained scalar
reference implementations (`repro.mpc._reference`).

Every hot path rewritten in PR 3 is pinned here against the legacy
loop it replaced: identical outputs and byte-identical transcript
fingerprints, in REAL and SIMULATED modes.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.mpc import _reference as ref
from repro.mpc import batch
from repro.mpc.gadgets import bits_of, int_of, nonzero_circuit
from repro.mpc.ot import (
    IknpExtension,
    SimulatedOT,
    _prg_bits,
    _stream_xor,
    make_ot,
)
from repro.mpc.yao import run_garbled_batch

from .conftest import TEST_GROUP_BITS


# ----------------------------------------------------------------------
# Marshalling kernels vs int.to_bytes / bits_of loops
# ----------------------------------------------------------------------


@given(
    st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=40),
    st.integers(1, 8),
)
def test_words_to_le_bytes_matches_int_to_bytes(vals, width):
    words = np.asarray(vals, dtype=np.uint64)
    mat = batch.words_to_le_bytes(words, width)
    for v, row in zip(vals, mat):
        assert bytes(row) == (v & ((1 << (8 * width)) - 1)).to_bytes(
            width, "little"
        )
    back = batch.le_bytes_to_words(mat)
    assert (back == (words & np.uint64((1 << (8 * width)) - 1 & (2**64 - 1)))).all() or (
        width == 8 and (back == words).all()
    )


@given(
    st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=40),
    st.integers(1, 63),
)
def test_words_to_bits_matches_bits_of(vals, ell):
    words = np.asarray(vals, dtype=np.uint64)
    bits = batch.words_to_bits(words, ell)
    for v, row in zip(vals, bits):
        assert list(row) == bits_of(v, ell)
    assert [int_of(list(row)) for row in bits] == list(
        batch.bits_to_words(bits)
    )


def test_bits_to_words_empty_batch():
    """A zero-instance garbled batch yields a plain empty list — seen in
    REAL-mode divide_reveal when a composed query has no output groups."""
    out = batch.bits_to_words(np.asarray([], dtype=np.uint8))
    assert out.shape == (0,) and out.dtype == np.uint64
    out2 = batch.bits_to_words(np.zeros((0, 32), dtype=np.uint8))
    assert out2.shape == (0,)


@given(st.binary(min_size=0, max_size=90), st.integers(1, 6))
def test_sha256_rows_matches_hashlib(blob, m):
    rows = np.frombuffer(blob.ljust(m * 13, b"\0")[: m * 13], dtype=np.uint8)
    rows = rows.reshape(m, 13)
    out = batch.sha256_rows(rows)
    for row, digest in zip(rows, out):
        assert bytes(digest) == hashlib.sha256(bytes(row)).digest()


@given(
    st.binary(min_size=32, max_size=32),
    st.binary(min_size=0, max_size=200),
)
def test_stream_xor_rows_matches_reference(key, data):
    legacy = ref.stream_xor(key, data)
    assert _stream_xor(key, data) == legacy
    got = batch.stream_xor_rows(
        np.frombuffer(key, dtype=np.uint8)[None, :],
        np.frombuffer(data, dtype=np.uint8).reshape(1, len(data)),
    )
    assert got.tobytes() == legacy


@given(
    st.binary(min_size=16, max_size=16),
    st.integers(0, 300),
    st.binary(min_size=8, max_size=8),
)
def test_prg_bits_matches_reference(seed, n_bits, salt):
    if n_bits == 0:
        return
    assert (_prg_bits(seed, n_bits, salt) == ref.prg_bits(seed, n_bits, salt)).all()


# ----------------------------------------------------------------------
# IKNP extension vs the scalar per-pair loop
# ----------------------------------------------------------------------


@pytest.mark.real
class TestOtDifferential:
    def _pairs(self, widths, seed=3):
        rng = np.random.default_rng(seed)
        pairs = [(rng.bytes(w), rng.bytes(w)) for w in widths]
        choices = [int(c) for c in rng.integers(0, 2, len(widths))]
        return pairs, choices

    def _run(self, cls, pairs, choices, seed=17):
        ctx = Context(Mode.REAL, seed=seed)
        ot = cls(ctx, TEST_GROUP_BITS)
        out = ot.transfer(pairs, choices)
        out += ot.transfer(pairs[:3], choices[:3])  # second batch, new salt
        return out, ctx.transcript.fingerprint()

    def test_uniform_width_batch(self):
        pairs, choices = self._pairs([16] * 120)
        new = self._run(IknpExtension, pairs, choices)
        old = self._run(ref.ReferenceIknpExtension, pairs, choices)
        assert new == old
        assert new[0][:120] == [p[c] for p, c in zip(pairs, choices)]

    def test_mixed_width_batch(self):
        pairs, choices = self._pairs([2, 40, 4, 4, 40, 2, 33, 1])
        new = self._run(IknpExtension, pairs, choices)
        old = self._run(ref.ReferenceIknpExtension, pairs, choices)
        assert new == old

    def test_chou_orlandi_differential(self):
        pairs, choices = self._pairs([16, 16, 16])

        def run(cls):
            ctx = Context(Mode.REAL, seed=5)
            ot = cls(ctx, TEST_GROUP_BITS)
            return ot.transfer(pairs, choices), ctx.transcript.fingerprint()

        from repro.mpc.ot import ChouOrlandiOT

        new = run(ChouOrlandiOT)
        old = run(ref.ReferenceChouOrlandiOT)
        assert new[0] == old[0] == [p[c] for p, c in zip(pairs, choices)]
        assert new[1] == old[1]

    def test_real_and_simulated_fingerprints_agree(self):
        pairs, choices = self._pairs([8] * 50)
        ctx_r = Context(Mode.REAL, seed=1)
        IknpExtension(ctx_r, TEST_GROUP_BITS).transfer(pairs, choices)
        ctx_s = Context(Mode.SIMULATED, seed=1)
        SimulatedOT(ctx_s, TEST_GROUP_BITS).transfer(pairs, choices)
        assert (
            ctx_r.transcript.fingerprint() == ctx_s.transcript.fingerprint()
        )

    def test_transfer_matrix_equals_transfer(self):
        rng = np.random.default_rng(2)
        m0 = np.frombuffer(rng.bytes(60 * 5), dtype=np.uint8).reshape(60, 5)
        m1 = np.frombuffer(rng.bytes(60 * 5), dtype=np.uint8).reshape(60, 5)
        choices = rng.integers(0, 2, 60)

        ctx_a = Context(Mode.REAL, seed=8)
        got_a = IknpExtension(ctx_a, TEST_GROUP_BITS).transfer_matrix(
            m0, m1, choices
        )
        ctx_b = Context(Mode.REAL, seed=8)
        got_b = IknpExtension(ctx_b, TEST_GROUP_BITS).transfer(
            [(a.tobytes(), b.tobytes()) for a, b in zip(m0, m1)],
            [int(c) for c in choices],
        )
        assert [r.tobytes() for r in got_a] == got_b
        assert (
            ctx_a.transcript.fingerprint() == ctx_b.transcript.fingerprint()
        )


# ----------------------------------------------------------------------
# Gilboa cross-multiplication and the garbled batch vs scalar staging
# ----------------------------------------------------------------------


@pytest.mark.real
class TestGilboaDifferential:
    def test_products_and_fingerprints_match_reference(self):
        rng = np.random.default_rng(4)
        u = rng.integers(0, 2**31, 17).astype(np.uint64)
        v = rng.integers(0, 2**31, 17).astype(np.uint64)

        ctx_new = Context(Mode.REAL, seed=23)
        ot_new = make_ot(ctx_new, TEST_GROUP_BITS)
        eng = Engine(ctx_new, TEST_GROUP_BITS)
        eng.ot = ot_new
        sv_new = eng._gilboa_cross(ALICE, u, v, "cross")

        ctx_old = Context(Mode.REAL, seed=23)
        ot_old = make_ot(ctx_old, TEST_GROUP_BITS)
        with ctx_old.section("cross"):
            sv_old = ref.gilboa_cross(ctx_old, ot_old, u, v)

        mask = ctx_new.mask
        assert (sv_new.reconstruct() == (u * v) & mask).all()
        assert (sv_new.reconstruct() == sv_old.reconstruct()).all()
        assert (
            ctx_new.transcript.fingerprint()
            == ctx_old.transcript.fingerprint()
        )


@pytest.mark.real
class TestGarbledBatchDifferential:
    def _inputs(self, circuit, n, seed=6):
        rng = np.random.default_rng(seed)
        na, nb = len(circuit.alice_inputs), len(circuit.bob_inputs)
        alice = [[int(x) for x in rng.integers(0, 2, na)] for _ in range(n)]
        bob = [[int(x) for x in rng.integers(0, 2, nb)] for _ in range(n)]
        return alice, bob

    def _run(self, fn, circuit, alice, bob, mode=Mode.REAL):
        ctx = Context(mode, seed=31)
        ot = make_ot(ctx, TEST_GROUP_BITS)
        outs = fn(ctx, ot, circuit, alice, bob)
        outs += fn(ctx, ot, circuit, alice[:2], bob[:2])
        return (
            [[int(b) for b in o] for o in outs],
            ctx.transcript.fingerprint(),
        )

    def test_outputs_and_fingerprints_match_reference(self):
        circuit = nonzero_circuit(20)
        alice, bob = self._inputs(circuit, 21)
        new = self._run(run_garbled_batch, circuit, alice, bob)
        old = self._run(ref.run_garbled_batch, circuit, alice, bob)
        assert new == old
        for a, b, o in zip(alice, bob, new[0]):
            assert o == circuit.evaluate(a, b)

    def test_plan_cache_reuses_template(self):
        circuit = nonzero_circuit(12)
        alice, bob = self._inputs(circuit, 3)
        ctx = Context(Mode.REAL, seed=2)
        ot = make_ot(ctx, TEST_GROUP_BITS)
        run_garbled_batch(ctx, ot, circuit, alice, bob)
        run_garbled_batch(ctx, ot, circuit, alice, bob)
        stats = ctx.cache.stats()
        assert stats["plan_misses"] == 1
        assert stats["plan_hits"] == 1


# ----------------------------------------------------------------------
# Whole-engine parity at a non-byte-aligned ring width (the rb bugfix)
# ----------------------------------------------------------------------


@pytest.mark.real
class TestNonByteAlignedRing:
    def test_real_vs_simulated_transcripts_at_ell_20(self):
        from repro.mpc.params import SecurityParams

        params = SecurityParams(ell=20)

        def run(mode):
            ctx = Context(mode, params=params, seed=13)
            eng = Engine(ctx, TEST_GROUP_BITS)
            x = eng.share(ALICE, [5, 0, 901, 2**19])
            y = eng.share(BOB, [3, 77, 0, 2**19 - 1])
            z = eng.mul_shared(x, y)
            return (
                list(z.reconstruct()),
                ctx.transcript.fingerprint(),
            )

        vals_r, fp_r = run(Mode.REAL)
        vals_s, fp_s = run(Mode.SIMULATED)
        mask = (1 << 20) - 1
        expect = [(5 * 3) & mask, 0, 0, (2**19 * (2**19 - 1)) & mask]
        assert vals_r == vals_s == expect
        assert fp_r == fp_s


# ----------------------------------------------------------------------
# Exponent sampling (the narrow-exponent bugfix)
# ----------------------------------------------------------------------


class TestExponentWidth:
    def test_random_exponent_is_full_width(self):
        """Exponents must be uniform in [1, q), not 62-124-bit: over 200
        draws, all lie in range, the top bit region is populated, and no
        draw is suspiciously short."""
        import secrets

        from repro.mpc.modp import modp_group

        g = modp_group(1536)
        qbits = g.q.bit_length()
        draws = [g.random_exponent(secrets.token_bytes) for _ in range(200)]
        assert all(1 <= x < g.q for x in draws)
        lengths = [x.bit_length() for x in draws]
        # P[bit_length <= qbits - 20] ~ 2^-20 per draw.
        assert min(lengths) > qbits - 20
        # Roughly half the draws should have the top bit set.
        top = sum(1 for L in lengths if L == qbits)
        assert 40 < top < 160

    def test_random_exponent_deterministic_under_seeded_source(self):
        from repro.mpc.modp import modp_group

        g = modp_group(1536)
        ctx1 = Context(Mode.REAL, seed=7)
        ctx2 = Context(Mode.REAL, seed=7)
        assert g.random_exponent(ctx1.random_bytes) == g.random_exponent(
            ctx2.random_bytes
        )

    def test_openssl_pow_matches_builtin(self):
        import secrets

        from repro.mpc.modp import modp_group

        g = modp_group(1536)
        for _ in range(5):
            base = g.pow(g.g, g.random_exponent(secrets.token_bytes))
            exp = g.random_exponent(secrets.token_bytes)
            assert g.pow(base, exp) == pow(base, exp, g.p)


# ----------------------------------------------------------------------
# Cuckoo max_bin_load Chernoff-scan boundary (the log-domain bugfix)
# ----------------------------------------------------------------------


class TestMaxBinLoad:
    def test_scan_starts_above_mean(self):
        """With a tiny tail target the Chernoff scan runs; the returned
        load must exceed the binomial mean (below it the bound is
        vacuous and, pre-fix, log(mean/load) could pick a spurious L)."""
        import math

        from repro.mpc.cuckoo import max_bin_load

        for n_items, n_bins, sigma in [
            (10_000, 13, 128),
            (5_000, 7, 200),
            (100_000, 127, 160),
        ]:
            load = max_bin_load(n_items, n_bins, sigma=sigma)
            mean = n_items * 3 / n_bins
            assert load > mean
            # And the Chernoff tail at the returned load really is below
            # the per-bin budget.
            target = 2.0 ** (-sigma) / n_bins
            log_tail = -mean + load * (1 + math.log(mean / load))
            assert log_tail < math.log(target)

    def test_monotone_in_sigma(self):
        from repro.mpc.cuckoo import max_bin_load

        loads = [
            max_bin_load(1000, 1270, sigma=s) for s in (20, 40, 80, 160, 320)
        ]
        assert loads == sorted(loads)
        assert all(l >= 1 for l in loads)

    def test_no_exceptions_over_grid(self):
        from repro.mpc.cuckoo import max_bin_load

        for n_items in (0, 1, 2, 17, 400):
            for n_bins in (1, 2, 13, 512):
                for sigma in (1, 40, 300):
                    load = max_bin_load(n_items, n_bins, sigma=sigma)
                    assert 1 <= load <= max(1, n_items * 3)
