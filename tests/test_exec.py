"""The execution layer: IR compilation, scheduling, tracing, caching.

The load-bearing property is **transcript byte-identity**: the
scheduler's default ("program") policy must replay the legacy
sequential orchestration's transcript byte-for-byte — same sizes, same
senders, same labels, same order — for every ownership split and both
modes.  The "stages" policy must stay semantically identical with the
same total bytes.
"""

import json

import pytest

from repro.core import SecureRelation, is_dummy_tuple
from repro.core.protocol import (
    legacy_secure_yannakakis,
    legacy_secure_yannakakis_shared,
    secure_yannakakis,
    secure_yannakakis_shared,
)
from repro.exec import (
    AlignStep,
    ExecPlan,
    ExecutionTrace,
    JoinStep,
    ProductStep,
    ReduceFoldStep,
    RevealResultStep,
    RevealStep,
    Scheduler,
    ShareStep,
    compile_plan,
)
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import Hypergraph, find_free_connex_tree
from repro.yannakakis import build_plan, build_two_phase_plan

from .conftest import TEST_GROUP_BITS
from .test_protocol import OWNER_SPLITS, example_11

OUTPUT = ("cls",)


def make_plan(rels, output=OUTPUT, two_phase=False):
    h = Hypergraph({n: r.attributes for n, r in rels.items()})
    tree = find_free_connex_tree(h, set(output))
    if two_phase:
        return build_two_phase_plan(tree, tuple(output))
    return build_plan(tree, tuple(output))


def secure_inputs(rels, owners):
    return {
        n: SecureRelation.from_annotated(owners[n], rels[n])
        for n in rels
    }


def owners_of(sec):
    return {n: r.owner for n, r in sec.items()}


# ----------------------------------------------------------------------
# IR structure
# ----------------------------------------------------------------------


def test_compile_step_structure():
    rels = example_11()
    plan = make_plan(rels)
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    ep = compile_plan(plan, owners, reveal_result=True, name="ex11")
    kinds = [s.kind for s in ep.steps]
    assert kinds.count("share") == 3
    assert kinds[-1] == "reveal_result"
    assert "join" in kinds and "product" in kinds
    assert ep.result_slot == "output"
    # Folded-away children get no reveal/align steps.
    folded = {s.child for s in ep.steps if isinstance(s, ReduceFoldStep)}
    revealed = {s.relation for s in ep.steps if isinstance(s, RevealStep)}
    assert folded.isdisjoint(revealed)
    aligned = {s.relation for s in ep.steps if isinstance(s, AlignStep)}
    assert aligned == revealed
    # Dependencies: every align waits on the join; the product on all
    # aligns; the final reveal on the product.
    join = next(s for s in ep.steps if isinstance(s, JoinStep))
    prod = next(s for s in ep.steps if isinstance(s, ProductStep))
    for s in ep.steps:
        if isinstance(s, AlignStep):
            assert join.id in ep.deps[s.id]
            assert s.id in ep.deps[prod.id]
    reveal_res = ep.steps[-1]
    assert prod.id in ep.deps[reveal_res.id]
    assert ep.stage_of[reveal_res.id] == max(ep.stage_of.values())


def test_compile_missing_relation_raises():
    rels = example_11()
    plan = make_plan(rels)
    with pytest.raises(KeyError, match="missing input relations"):
        compile_plan(plan, {"R1": ALICE, "R2": BOB})


def test_plan_json_roundtrip():
    rels = example_11()
    plan = make_plan(rels)
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    ep = compile_plan(plan, owners, pad_out_to=9, reveal_result=True,
                      name="ex11")
    blob = ep.dumps()
    back = ExecPlan.loads(blob)
    assert back.steps == ep.steps
    assert back.inputs == ep.inputs
    assert back.result_slot == ep.result_slot
    assert back.deps == ep.deps
    assert back.stage_of == ep.stage_of
    # JSON is pure data — stable under a second round trip.
    assert json.loads(blob) == json.loads(back.dumps())


def test_plan_describe_mentions_every_step():
    rels = example_11()
    ep = compile_plan(
        make_plan(rels), {"R1": ALICE, "R2": BOB, "R3": ALICE}
    )
    text = ep.describe()
    for s in ep.steps:
        assert f"#{s.id} " in text


def test_stages_group_independent_reveals():
    rels = example_11()
    ep = compile_plan(
        make_plan(rels), {"R1": ALICE, "R2": BOB, "R3": ALICE}
    )
    reveal_stages = {
        ep.stage_of[s.id]
        for s in ep.steps
        if isinstance(s, RevealStep)
    }
    # All surviving relations' reveals are mutually independent: they
    # land in the same dependency stage.
    assert len(reveal_stages) == 1


# ----------------------------------------------------------------------
# Scheduler vs legacy: byte-identical transcripts
# ----------------------------------------------------------------------


def run_both(rels, owners, mode, *, two_phase=False, seed=11):
    plan = make_plan(rels, two_phase=two_phase)

    def one(fn):
        ctx = Context(mode, seed=seed)
        engine = Engine(ctx, TEST_GROUP_BITS)
        result, stats = fn(engine, secure_inputs(rels, owners), plan)
        return ctx.transcript.fingerprint(), result

    f_legacy, r_legacy = one(legacy_secure_yannakakis)
    f_new, r_new = one(secure_yannakakis)
    return f_legacy, r_legacy, f_new, r_new


@pytest.mark.parametrize("owners", OWNER_SPLITS)
def test_fingerprint_identity_simulated(owners):
    f_legacy, r_legacy, f_new, r_new = run_both(
        example_11(), owners, Mode.SIMULATED
    )
    assert f_new == f_legacy
    assert r_new.semantically_equal(r_legacy)


@pytest.mark.real
def test_fingerprint_identity_real():
    f_legacy, r_legacy, f_new, r_new = run_both(
        example_11(), {"R1": ALICE, "R2": BOB, "R3": ALICE}, Mode.REAL
    )
    assert f_new == f_legacy
    assert r_new.semantically_equal(r_legacy)


def test_fingerprint_identity_two_phase():
    f_legacy, r_legacy, f_new, r_new = run_both(
        example_11(), {"R1": BOB, "R2": ALICE, "R3": BOB},
        Mode.SIMULATED, two_phase=True,
    )
    assert f_new == f_legacy
    assert r_new.semantically_equal(r_legacy)


def test_fingerprint_identity_shared_with_padding():
    rels = example_11()
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    plan = make_plan(rels)

    def one(fn):
        ctx = Context(Mode.SIMULATED, seed=3)
        engine = Engine(ctx, TEST_GROUP_BITS)
        res = fn(engine, secure_inputs(rels, owners), plan,
                 pad_out_to=8)
        return ctx.transcript.fingerprint(), res

    f_legacy, r_legacy = one(legacy_secure_yannakakis_shared)
    f_new, r_new = one(secure_yannakakis_shared)
    assert f_new == f_legacy
    # Padding rows carry fresh dummy nonces; the real rows must match.
    real_new = [t for t in r_new.tuples if not is_dummy_tuple(t)]
    real_legacy = [t for t in r_legacy.tuples if not is_dummy_tuple(t)]
    assert real_new == real_legacy
    assert len(r_new.tuples) == len(r_legacy.tuples) == 8
    assert len(r_new.annotations) == 8


def test_stages_policy_same_semantics_and_total_bytes():
    rels = example_11()
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    plan = make_plan(rels)

    def one(policy):
        ctx = Context(Mode.SIMULATED, seed=21)
        engine = Engine(ctx, TEST_GROUP_BITS, exec_policy=policy)
        result, stats = secure_yannakakis(
            engine, secure_inputs(rels, owners), plan
        )
        return ctx.transcript, result

    t_prog, r_prog = one("program")
    t_stages, r_stages = one("stages")
    assert r_stages.semantically_equal(r_prog)
    assert t_stages.total_bytes == t_prog.total_bytes
    # Per-message shapes are data-independent, so the multiset of
    # (sender, size, label) records matches even if the order differs.
    assert sorted(t_stages.fingerprint()) == sorted(t_prog.fingerprint())


def test_unknown_policy_rejected():
    ctx = Context(Mode.SIMULATED, seed=0)
    engine = Engine(ctx, TEST_GROUP_BITS)
    with pytest.raises(ValueError, match="unknown policy"):
        Scheduler(engine, policy="speculative")


def test_scheduler_missing_input_raises():
    rels = example_11()
    plan = make_plan(rels)
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    ep = compile_plan(plan, owners)
    ctx = Context(Mode.SIMULATED, seed=0)
    engine = Engine(ctx, TEST_GROUP_BITS)
    sec = secure_inputs(rels, owners)
    del sec["R3"]
    with pytest.raises(KeyError, match="missing input relations"):
        Scheduler(engine).run(ep, sec)


# ----------------------------------------------------------------------
# Tracing and caching
# ----------------------------------------------------------------------


def test_trace_nodes_cover_transcript():
    rels = example_11()
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    plan = make_plan(rels)
    tracer = ExecutionTrace()
    ctx = Context(Mode.SIMULATED, seed=9)
    engine = Engine(ctx, TEST_GROUP_BITS, tracer=tracer)
    secure_yannakakis(engine, secure_inputs(rels, owners), plan)

    ep = compile_plan(plan, owners, reveal_result=True)
    assert len(tracer.nodes) == len(ep.steps)
    assert [n.id for n in tracer.nodes] == [s.id for s in ep.steps]
    # The nodes partition the transcript: their byte/message/round
    # sums equal the whole run's.
    assert tracer.total_bytes == ctx.transcript.total_bytes
    assert (
        sum(n.n_messages for n in tracer.nodes)
        == len(ctx.transcript.messages)
    )
    assert all(n.seconds >= 0 for n in tracer.nodes)
    by_kind = {n.kind: n for n in tracer.nodes}
    assert by_kind["share"].n_bytes == 0
    assert by_kind["reveal"].n_bytes > 0
    assert by_kind["reveal"].section == "full_join"
    assert tracer.meta["policy"] == "program"
    assert tracer.meta["cache"]["circuit_templates"] > 0
    # JSON export carries every node field.
    blob = tracer.to_json()
    assert blob["total_bytes"] == tracer.total_bytes
    assert {n["kind"] for n in blob["nodes"]} == set(by_kind)


def test_trace_sections_report_phases():
    rels = example_11()
    owners = {"R1": BOB, "R2": ALICE, "R3": BOB}
    tracer = ExecutionTrace()
    ctx = Context(Mode.SIMULATED, seed=9)
    engine = Engine(ctx, TEST_GROUP_BITS, tracer=tracer)
    secure_yannakakis(
        engine, secure_inputs(rels, owners), make_plan(rels)
    )
    sections = tracer.by_section()
    assert sections.get("reduce", 0) > 0
    assert sections.get("full_join", 0) > 0


def test_gadget_template_cache_hits():
    rels = example_11()
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    ctx = Context(Mode.SIMULATED, seed=9)
    engine = Engine(ctx, TEST_GROUP_BITS)
    secure_yannakakis(
        engine, secure_inputs(rels, owners), make_plan(rels)
    )
    stats = ctx.cache.stats()
    # Same-shaped gadgets recur across operators: the run must reuse
    # templates, not rebuild them.
    assert stats["circuit_hits"] > 0
    assert stats["circuit_templates"] >= 1
    assert stats["circuit_misses"] == stats["circuit_templates"]


def test_context_cache_stats_across_reruns():
    rels = example_11()
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    ctx = Context(Mode.SIMULATED, seed=9)
    engine = Engine(ctx, TEST_GROUP_BITS)
    assert ctx.cache_stats() == ctx.cache.stats()
    assert ctx.cache_stats()["circuit_misses"] == 0
    secure_yannakakis(
        engine, secure_inputs(rels, owners), make_plan(rels)
    )
    first = ctx.cache_stats()
    # Every miss builds exactly one template; nothing is rebuilt.
    assert first["circuit_misses"] == first["circuit_templates"]
    assert first["topology_misses"] == first["topologies"]
    # A second run on the same context reuses every template: hit
    # counters grow, miss counters stay frozen.
    secure_yannakakis(
        engine, secure_inputs(rels, owners), make_plan(rels)
    )
    second = ctx.cache_stats()
    assert second["circuit_misses"] == first["circuit_misses"]
    assert second["topology_misses"] == first["topology_misses"]
    assert second["circuit_hits"] > first["circuit_hits"]


@pytest.mark.real
def test_topology_cache_shared_across_oeps():
    rels = example_11()
    owners = {"R1": ALICE, "R2": BOB, "R3": ALICE}
    ctx = Context(Mode.REAL, seed=9)
    engine = Engine(ctx, TEST_GROUP_BITS)
    secure_yannakakis(
        engine, secure_inputs(rels, owners), make_plan(rels)
    )
    stats = ctx.cache.stats()
    # Every OEP routes two Benes networks; same-size topologies must
    # be built once per run.
    assert stats["topology_hits"] > 0
    assert stats["topologies"] >= 1
