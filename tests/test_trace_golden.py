"""Golden-file pin of the ExecutionTrace JSON schema.

``repro trace`` is a public artifact: notebooks and the bench tooling
consume its JSON.  This test pins the *structure* — top-level keys,
meta keys, per-node field names, and the (kind, label, section, stage)
operator sequence for TPC-H Q3 — against
``tests/golden/trace_q3_structure.json``.  Measurements (bytes,
seconds, cache counters) are deliberately not pinned; they may drift
with implementation changes without breaking consumers.

After a *deliberate* schema change, regenerate with::

    PYTHONPATH=src python -m tests.test_trace_golden --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN = Path(__file__).resolve().parent / "golden" / "trace_q3_structure.json"


def q3_trace_json():
    """The trace blob exactly as ``repro trace Q3 --scale 1`` emits it."""
    from repro.exec import ExecutionTrace
    from repro.mpc import Engine, Mode
    from repro.tpch import PREPARED, generate

    dataset = generate(1)
    query = PREPARED["Q3"](dataset)
    tracer = ExecutionTrace()
    engine = Engine(
        query.make_context(Mode.SIMULATED, seed=7),
        tracer=tracer,
        exec_policy="program",
    )
    query.run_secure(engine)
    tracer.meta["query"] = query.name
    tracer.meta["scale_mb"] = 1
    tracer.meta["mode"] = "simulated"
    tracer.meta["backend"] = "yannakakis"
    return tracer.to_json()


def structure_of(blob):
    # Fold/semijoin nodes additionally carry the routed join back-end
    # plus its pre-dispatch byte estimate; both the field names and the
    # (deterministic) per-node back-end choice are pinned.
    routed = [n for n in blob["nodes"] if "backend" in n]
    return {
        "top_level_keys": sorted(blob),
        "meta_keys": sorted(blob["meta"]),
        "node_fields": sorted(blob["nodes"][0]),
        "routed_node_fields": sorted(routed[0]) if routed else [],
        "nodes": [
            {
                k: n[k]
                for k in ("kind", "label", "section", "stage", "backend")
                if k in n
            }
            for n in blob["nodes"]
        ],
    }


def test_trace_q3_schema_matches_golden():
    golden = json.loads(GOLDEN.read_text())
    actual = structure_of(q3_trace_json())
    assert actual["top_level_keys"] == golden["top_level_keys"]
    assert actual["meta_keys"] == golden["meta_keys"]
    assert actual["node_fields"] == golden["node_fields"]
    assert actual["routed_node_fields"] == golden["routed_node_fields"]
    assert actual["nodes"] == golden["nodes"]


def test_trace_cli_emits_same_structure(tmp_path, capsys):
    """The ``repro trace`` subcommand writes the pinned schema too."""
    from repro.cli import main

    out = tmp_path / "trace.json"
    rc = main(
        ["trace", "Q3", "--scale", "1", "--seed", "7", "-o", str(out)]
    )
    capsys.readouterr()
    assert rc == 0
    blob = json.loads(out.read_text())
    golden = json.loads(GOLDEN.read_text())
    assert structure_of(blob) == {
        k: golden[k] for k in structure_of(blob)
    }


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regenerate" in sys.argv:
        golden = json.loads(GOLDEN.read_text())
        golden.update(structure_of(q3_trace_json()))
        GOLDEN.write_text(
            json.dumps(golden, indent=2, sort_keys=True) + "\n"
        )
        print(f"regenerated {GOLDEN}")
