"""Circuit-based PSI with payloads — both modes, plus obliviousness."""

import numpy as np
import pytest

from repro.mpc import Context, Mode
from repro.mpc.ot import make_ot
from repro.mpc.psi import psi_with_payloads
from repro.mpc.sharing import SharedVector

from .conftest import TEST_GROUP_BITS


def run_psi(mode, alice_items, bob_items, payloads, seed=7, **kwargs):
    ctx = Context(mode, seed=seed)
    ot = make_ot(ctx, TEST_GROUP_BITS)
    res = psi_with_payloads(
        ctx, ot, alice_items, bob_items, payloads, **kwargs
    )
    return ctx, res


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestCorrectness:
    def test_intersection_and_payloads(self, mode):
        alice = [("k", i) for i in range(18)]
        bob = [("k", i) for i in range(9, 30)]
        payloads = [1000 + i for i in range(9, 30)]
        ctx, res = run_psi(mode, alice, bob, payloads)
        ind = res.ind.reconstruct()
        pay = res.payload.reconstruct()
        bins = res.bin_of_item_index()
        for j, item in enumerate(alice):
            b = bins[j]
            if item in set(bob):
                assert ind[b] == 1 and pay[b] == 1000 + item[1]
            else:
                assert ind[b] == 0 and pay[b] == 0

    def test_disjoint_sets(self, mode):
        ctx, res = run_psi(
            mode, [("a", i) for i in range(8)],
            [("b", i) for i in range(8)], list(range(8)),
        )
        assert not res.ind.reconstruct().any()

    def test_fallback_payloads(self, mode):
        alice = [("x", i) for i in range(6)]
        bob = [("x", 0)]
        fallbacks = list(range(100, 100 + res_bins(6)))
        ctx, res = run_psi(
            mode, alice, bob, [55],
            bob_fallbacks=fallbacks, reveal_payload=True,
        )
        pay = np.asarray(res.payload)
        bins = res.bin_of_item_index()
        assert pay[bins[0]] == 55
        for b in range(res.n_bins):
            if b != bins[0]:
                assert pay[b] == fallbacks[b]

    def test_mixed_item_types(self, mode):
        alice = [1, "1", (1,), ("a", 2)]
        bob = ["1", (1,)]
        ctx, res = run_psi(mode, alice, bob, [7, 8])
        ind = res.ind.reconstruct()
        bins = res.bin_of_item_index()
        assert ind[bins[0]] == 0  # int 1 != str "1"
        assert ind[bins[1]] == 1
        assert ind[bins[2]] == 1
        assert ind[bins[3]] == 0


def res_bins(m):
    from repro.mpc.cuckoo import num_bins

    return num_bins(m)


class TestValidation:
    def test_payload_count_mismatch(self):
        with pytest.raises(ValueError):
            run_psi(Mode.SIMULATED, [1], [2, 3], [5])

    def test_duplicate_bob_items(self):
        with pytest.raises(ValueError):
            run_psi(Mode.SIMULATED, [1], [2, 2], [5, 6])

    def test_wrong_fallback_length(self):
        with pytest.raises(ValueError):
            run_psi(
                Mode.SIMULATED, [1, 2], [3], [5], bob_fallbacks=[1, 2]
            )


class TestObliviousness:
    def test_transcript_independent_of_values(self):
        """Two runs with identical public shape (set sizes) but totally
        different private contents must produce identical traffic."""

        def fingerprint(alice, bob, payloads):
            ctx = Context(Mode.SIMULATED, seed=3)
            ot = make_ot(ctx, TEST_GROUP_BITS)
            psi_with_payloads(ctx, ot, alice, bob, payloads)
            return ctx.transcript.fingerprint()

        f1 = fingerprint(
            [("k", i) for i in range(20)],
            [("k", i) for i in range(10, 40)],
            list(range(30)),
        )
        f2 = fingerprint(
            [("zz", i * 7) for i in range(20)],
            [("qq", i) for i in range(30)],
            [9] * 30,
        )
        assert f1 == f2

    def test_modes_charge_identically(self):
        alice = [("k", i) for i in range(15)]
        bob = [("k", i) for i in range(10, 30)]
        payloads = list(range(20))
        real = Context(Mode.REAL, seed=9)
        psi_with_payloads(
            real, make_ot(real, 2048), alice, bob, payloads
        )
        sim = Context(Mode.SIMULATED, seed=9)
        psi_with_payloads(
            sim, make_ot(sim, 2048), alice, bob, payloads
        )
        assert (
            real.transcript.total_bytes == sim.transcript.total_bytes
        )

    def test_shares_are_fresh_random(self):
        ctx, res = run_psi(
            Mode.SIMULATED, [("k", 1)], [("k", 1)], [5], seed=1
        )
        ctx2, res2 = run_psi(
            Mode.SIMULATED, [("k", 1)], [("k", 1)], [5], seed=2
        )
        assert not (res.ind.alice == res2.ind.alice).all() or not (
            res.payload.alice == res2.payload.alice
        ).all()
