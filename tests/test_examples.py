"""Smoke tests: every example script runs to completion (their internal
assertions double as correctness checks)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 3
