"""Join trees, the free-connex property, and the two characterisations."""

import numpy as np
import pytest

from repro.relalg import (
    Hypergraph,
    JoinTree,
    find_free_connex_tree,
    is_free_connex,
)


def paper_example():
    """Example 1.1: R1(person, coins, state), R2(person, disease, cost),
    R3(disease, class)."""
    return Hypergraph(
        {
            "R1": ("person", "coins", "state"),
            "R2": ("person", "disease", "cost"),
            "R3": ("disease", "class"),
        }
    )


class TestJoinTreeStructure:
    def test_orientation_and_depth(self):
        h = paper_example()
        tree = JoinTree(h, [("R1", "R2"), ("R2", "R3")], root="R3")
        assert tree.parent["R3"] is None
        assert tree.parent["R2"] == "R3"
        assert tree.parent["R1"] == "R2"
        assert tree.depth["R1"] == 2

    def test_bottom_up_children_first(self):
        h = paper_example()
        tree = JoinTree(h, [("R1", "R2"), ("R2", "R3")], root="R3")
        order = tree.bottom_up()
        assert order.index("R1") < order.index("R2") < order.index("R3")
        assert tree.top_down() == list(reversed(order))

    def test_top_of(self):
        h = paper_example()
        tree = JoinTree(h, [("R1", "R2"), ("R2", "R3")], root="R3")
        assert tree.top_of("disease") == "R3"
        assert tree.top_of("person") == "R2"
        assert tree.top_of("state") == "R1"
        with pytest.raises(KeyError):
            tree.top_of("nope")

    def test_is_ancestor_is_proper(self):
        h = paper_example()
        tree = JoinTree(h, [("R1", "R2"), ("R2", "R3")], root="R3")
        assert tree.is_ancestor("R3", "R1")
        assert not tree.is_ancestor("R1", "R3")
        assert not tree.is_ancestor("R2", "R2")

    def test_rejects_unknown_root(self):
        with pytest.raises(ValueError):
            JoinTree(paper_example(), [("R1", "R2"), ("R2", "R3")], "R9")

    def test_rejects_non_spanning(self):
        with pytest.raises(ValueError):
            JoinTree(paper_example(), [("R1", "R2")], "R2")


class TestFreeConnex:
    def test_paper_example_class_output(self):
        h = paper_example()
        assert is_free_connex(h, {"class"})
        tree = find_free_connex_tree(h, {"class"})
        assert tree is not None
        assert tree.satisfies_free_connex({"class"})

    def test_paper_counterexample_class_coins(self):
        # Grouping by {class, coins} breaks free-connexity (Section 3.1).
        h = paper_example()
        assert not is_free_connex(h, {"class", "coins"})
        assert find_free_connex_tree(h, {"class", "coins"}) is None

    def test_empty_output_always_free_connex_when_acyclic(self):
        h = paper_example()
        assert is_free_connex(h, set())
        assert find_free_connex_tree(h, set()) is not None

    def test_cyclic_never_free_connex(self):
        tri = Hypergraph(
            {"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("A", "C")}
        )
        assert not is_free_connex(tri, {"A"})

    def test_all_attributes_output(self):
        h = paper_example()
        assert is_free_connex(h, set(h.vertices))

    def test_output_must_exist(self):
        with pytest.raises(ValueError):
            is_free_connex(paper_example(), {"ghost"})

    def test_q9_shape_not_free_connex(self):
        # The Q9 situation (Section 8.1): grouping by attributes from two
        # different "ends" of the tree is acyclic but not free-connex.
        h = Hypergraph(
            {
                "supplier": ("sk", "nk"),
                "lineitem": ("ok", "pk", "sk"),
                "orders": ("ok", "year"),
                "part": ("pk",),
            }
        )
        assert h.is_acyclic()
        assert not is_free_connex(h, {"nk", "year"})
        # Fixing one side (the per-nation decomposition) restores it.
        assert is_free_connex(h, {"year"})


class TestCharacterisationsAgree:
    def test_random_hypergraphs(self):
        """The virtual-edge characterisation and the exhaustive rooted
        tree search must agree on random small queries."""
        rng = np.random.default_rng(7)
        agree = 0
        for _ in range(120):
            n_rel = int(rng.integers(2, 5))
            n_attr = int(rng.integers(2, 6))
            attrs = [f"A{i}" for i in range(n_attr)]
            edges = {}
            for i in range(n_rel):
                k = int(rng.integers(1, min(3, n_attr) + 1))
                pick = rng.choice(n_attr, size=k, replace=False)
                edges[f"R{i}"] = tuple(attrs[j] for j in pick)
            h = Hypergraph(edges)
            out_k = int(rng.integers(0, len(h.vertices) + 1))
            out = set(
                rng.choice(sorted(h.vertices), size=out_k, replace=False)
            )
            witness = find_free_connex_tree(h, out)
            characterised = is_free_connex(h, out)
            assert (witness is not None) == characterised, (edges, out)
            if witness is not None:
                # The paper's TOP-ancestor condition is sufficient: any
                # rooted tree satisfying it must compile.
                from repro.yannakakis.plan import build_plan

                if witness.satisfies_free_connex(out):
                    build_plan(witness, tuple(sorted(out)))
            agree += 1
        assert agree == 120
