"""Transcript metering: bytes, rounds, sections, fingerprints."""

import pytest

from repro.mpc import ALICE, BOB, Context, Mode, Transcript, other_party


class TestTranscript:
    def test_totals(self):
        t = Transcript()
        t.send(ALICE, 100, "x")
        t.send(BOB, 50, "y")
        assert t.total_bytes == 150
        assert t.bytes_from(ALICE) == 100
        assert t.bytes_from(BOB) == 50

    def test_rounds_count_direction_changes(self):
        t = Transcript()
        t.send(ALICE, 1)
        t.send(ALICE, 1)
        t.send(BOB, 1)
        t.send(ALICE, 1)
        assert t.rounds == 3

    def test_sections_nest(self):
        t = Transcript()
        with t.section("psi"):
            t.send(ALICE, 10, "seeds")
            with t.section("ot"):
                t.send(BOB, 20, "u")
        assert t.messages[0].label == "psi/seeds"
        assert t.messages[1].label == "psi/ot/u"
        assert t.bytes_by_section() == {"psi": 30}
        assert t.bytes_by_section(depth=2) == {"psi/seeds": 10, "psi/ot": 20}

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Transcript().send(ALICE, -1)

    def test_fingerprint_is_shape_only(self):
        t1, t2 = Transcript(), Transcript()
        for t in (t1, t2):
            t.send(ALICE, 10, "a")
            t.send(BOB, 20, "b")
        assert t1.fingerprint() == t2.fingerprint()
        t2.send(ALICE, 1, "c")
        assert t1.fingerprint() != t2.fingerprint()

    def test_summary_mentions_totals(self):
        t = Transcript()
        t.send(ALICE, 10, "x")
        assert "10" in t.summary()

    def test_rounds_by_section(self):
        t = Transcript()
        with t.section("reduce"):
            t.send(ALICE, 1, "a")
            t.send(BOB, 1, "b")
            t.send(BOB, 1, "c")
        with t.section("join"):
            t.send(BOB, 1, "d")
            t.send(ALICE, 1, "e")
        # Direction changes are counted per section independently.
        assert t.rounds_by_section() == {"reduce": 2, "join": 2}
        with t.section("reduce"):
            t.send(ALICE, 1, "f")
        assert t.rounds_by_section()["reduce"] == 3

    def test_rounds_by_section_depth_and_unlabelled(self):
        t = Transcript()
        t.send(ALICE, 1)
        with t.section("psi"):
            with t.section("ot"):
                t.send(BOB, 1, "u")
                t.send(ALICE, 1, "v")
            t.send(ALICE, 1, "w")
        assert t.rounds_by_section() == {"": 1, "psi": 2}
        assert t.rounds_by_section(depth=2) == {
            "": 1, "psi/ot": 2, "psi/w": 1,
        }

    def test_slice_rounds(self):
        t = Transcript()
        t.send(ALICE, 1)
        t.send(ALICE, 1)
        t.send(BOB, 1)
        assert Transcript.slice_rounds(t.messages) == 2
        assert Transcript.slice_rounds(t.messages[1:]) == 2
        assert Transcript.slice_rounds([]) == 0

    def test_to_json_includes_rounds_by_section(self):
        t = Transcript()
        with t.section("semijoin"):
            t.send(ALICE, 4, "x")
        blob = t.to_json()
        assert blob["rounds_by_section"] == {"semijoin": 1}


class TestContext:
    def test_other_party(self):
        assert other_party(ALICE) == BOB
        assert other_party(BOB) == ALICE
        with pytest.raises(ValueError):
            other_party("carol")

    def test_swapped_roles_relabels_sender(self):
        ctx = Context(Mode.SIMULATED, seed=0)
        ctx.send(ALICE, 5, "plain")
        with ctx.swapped_roles():
            ctx.send(ALICE, 5, "swapped")
            with ctx.swapped_roles():
                ctx.send(ALICE, 5, "double")
        senders = [m.sender for m in ctx.transcript.messages]
        assert senders == [ALICE, BOB, ALICE]

    def test_random_ring_vector_in_range(self):
        ctx = Context(Mode.SIMULATED, seed=1)
        v = ctx.random_ring_vector(1000)
        assert (v < ctx.modulus).all()

    def test_fresh_keeps_config_clears_transcript(self):
        ctx = Context(Mode.REAL, seed=2)
        ctx.send(ALICE, 5)
        child = ctx.fresh()
        assert child.mode == Mode.REAL
        assert child.transcript.total_bytes == 0

    def test_fresh_preserves_swapped_roles(self):
        # Regression: a sub-protocol measured inside a swapped_roles
        # block must keep attributing bytes to the physical sender.
        ctx = Context(Mode.SIMULATED, seed=2)
        with ctx.swapped_roles():
            child = ctx.fresh()
            child.send(ALICE, 5, "x")
        assert child.transcript.messages[0].sender == BOB

    def test_fresh_shares_run_cache(self):
        ctx = Context(Mode.SIMULATED, seed=2)
        child = ctx.fresh()
        assert child.cache is ctx.cache


class TestSecurityParams:
    def test_defaults_match_paper(self):
        from repro.mpc import DEFAULT_PARAMS

        assert DEFAULT_PARAMS.kappa == 128
        assert DEFAULT_PARAMS.sigma == 40
        assert DEFAULT_PARAMS.ell == 32
        assert DEFAULT_PARAMS.cuckoo_expansion == 1.27
        assert DEFAULT_PARAMS.cuckoo_hashes == 3

    def test_derived_properties(self):
        from repro.mpc import SecurityParams

        p = SecurityParams(ell=48)
        assert p.modulus == 2**48
        assert p.label_bytes == 16

    def test_params_frozen(self):
        import dataclasses

        from repro.mpc import DEFAULT_PARAMS

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_PARAMS.ell = 64
