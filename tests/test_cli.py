"""The command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_tpch_q3(self, capsys):
        assert main(["tpch", "Q3", "--scale", "1", "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "Q3" in out and "matches plaintext: True" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--queries", "Q10", "--scales", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "Q3", "--scale", "1"]) == 0
        out = capsys.readouterr().out
        assert "input tuples" in out

    def test_trace_stdout(self, capsys):
        assert main(["trace", "Q3", "--scale", "1"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["meta"]["query"] == "Q3"
        assert blob["meta"]["policy"] == "program"
        assert blob["total_bytes"] > 0
        kinds = {n["kind"] for n in blob["nodes"]}
        assert {"share", "reveal", "join", "align", "product"} <= kinds
        for node in blob["nodes"]:
            assert {
                "id", "kind", "label", "section", "stage",
                "seconds", "n_bytes", "n_messages", "rounds",
            } <= set(node)

    def test_trace_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main([
            "trace", "Q18", "--scale", "1",
            "--policy", "stages", "-o", str(out_file),
        ]) == 0
        assert "trace nodes" in capsys.readouterr().out
        blob = json.loads(out_file.read_text())
        assert blob["meta"]["policy"] == "stages"
        assert len(blob["nodes"]) > 0

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["tpch", "Q99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
