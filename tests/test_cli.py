"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_tpch_q3(self, capsys):
        assert main(["tpch", "Q3", "--scale", "1", "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "Q3" in out and "matches plaintext: True" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--queries", "Q10", "--scales", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "Q3", "--scale", "1"]) == 0
        out = capsys.readouterr().out
        assert "input tuples" in out

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["tpch", "Q99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
