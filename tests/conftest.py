"""Shared fixtures: contexts, engines, and small random relations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import AnnotatedRelation, IntegerRing

#: Small OT group for REAL-mode tests (2048-bit is the production default).
TEST_GROUP_BITS = 1536


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def sim_ctx():
    return Context(Mode.SIMULATED, seed=1)


@pytest.fixture
def real_ctx():
    return Context(Mode.REAL, seed=2)


@pytest.fixture
def sim_engine(sim_ctx):
    return Engine(sim_ctx, TEST_GROUP_BITS)


@pytest.fixture
def real_engine(real_ctx):
    return Engine(real_ctx, TEST_GROUP_BITS)


@pytest.fixture(params=[Mode.SIMULATED, Mode.REAL])
def any_engine(request):
    ctx = Context(request.param, seed=3)
    return Engine(ctx, TEST_GROUP_BITS)


RING = IntegerRing(32)


def random_relation(rng, attrs, n, key_range=8, annot_range=50, ring=RING):
    """A small random annotated relation with integer attributes."""
    tuples = [
        tuple(int(v) for v in rng.integers(0, key_range, len(attrs)))
        for _ in range(n)
    ]
    annots = rng.integers(0, annot_range, n)
    return AnnotatedRelation(attrs, tuples, annots, ring)
