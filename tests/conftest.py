"""Shared fixtures: contexts, engines, and small random relations.

Also the suite-wide policy knobs: the hypothesis settings profile (so
no test file hard-codes its own example budget) and automatic ``real``
marking of every test that reaches REAL-mode cryptography through the
shared fixtures (``-m 'not real'`` then skips all of them).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import AnnotatedRelation, IntegerRing

try:
    from hypothesis import settings as _hyp_settings

    # One shared example budget for every property test; select an
    # alternative with HYPOTHESIS_PROFILE=thorough (e.g. nightly).
    _hyp_settings.register_profile(
        "default", max_examples=25, deadline=None
    )
    _hyp_settings.register_profile("ci", max_examples=15, deadline=None)
    _hyp_settings.register_profile(
        "thorough", max_examples=200, deadline=None
    )
    _hyp_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "default")
    )
except ImportError:  # pragma: no cover - hypothesis is optional
    pass

#: Small OT group for REAL-mode tests (2048-bit is the production default).
TEST_GROUP_BITS = 1536

#: Fixtures whose use implies REAL-mode cryptography.
_REAL_FIXTURES = {"real_ctx", "real_engine"}


def pytest_collection_modifyitems(config, items):
    """Auto-mark ``real`` on tests that run REAL-mode crypto via the
    shared fixtures or a ``Mode.REAL`` parametrization."""
    for item in items:
        if _REAL_FIXTURES & set(getattr(item, "fixturenames", ())):
            item.add_marker(pytest.mark.real)
            continue
        callspec = getattr(item, "callspec", None)
        if callspec is not None and any(
            v is Mode.REAL for v in callspec.params.values()
        ):
            item.add_marker(pytest.mark.real)


def make_engine(mode=Mode.SIMULATED, seed=0, group_bits=TEST_GROUP_BITS):
    """One-line engine factory for tests that need several engines (or
    non-fixture parametrisation).  Test modules alias it with their
    historical default seed via ``functools.partial`` instead of each
    re-defining the same helper."""
    return Engine(Context(mode, seed=seed), group_bits)


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def sim_ctx():
    return Context(Mode.SIMULATED, seed=1)


@pytest.fixture
def real_ctx():
    return Context(Mode.REAL, seed=2)


@pytest.fixture
def sim_engine(sim_ctx):
    return Engine(sim_ctx, TEST_GROUP_BITS)


@pytest.fixture
def real_engine(real_ctx):
    return Engine(real_ctx, TEST_GROUP_BITS)


@pytest.fixture(params=[Mode.SIMULATED, Mode.REAL])
def any_engine(request):
    ctx = Context(request.param, seed=3)
    return Engine(ctx, TEST_GROUP_BITS)


RING = IntegerRing(32)


def random_relation(rng, attrs, n, key_range=8, annot_range=50, ring=RING):
    """A small random annotated relation with integer attributes."""
    tuples = [
        tuple(int(v) for v in rng.integers(0, key_range, len(attrs)))
        for _ in range(n)
    ]
    annots = rng.integers(0, annot_range, n)
    return AnnotatedRelation(attrs, tuples, annots, ring)
