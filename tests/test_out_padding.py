"""Output-size padding (Sections 4 and 6.3): hiding the true OUT from
Bob behind a declared upper bound."""

from functools import partial

import numpy as np
import pytest

from repro.core import SecureAnnotations, SecureRelation, oblivious_join
from repro.core.protocol import secure_yannakakis_shared
from repro.mpc import ALICE, BOB
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import build_plan

from .conftest import make_engine

RING = IntegerRing(32)


mk_engine = partial(make_engine, seed=1)


def shared_rel(eng, owner, attrs, tuples, annots):
    rel = AnnotatedRelation(attrs, tuples, annots, RING)
    sec = SecureRelation.from_annotated(owner, rel)
    sec.annotations = SecureAnnotations.shared(
        eng.share(owner, rel.annotations)
    )
    return sec


class TestPadding:
    def test_padded_rows_are_zero_annotated(self):
        eng = mk_engine()
        r = shared_rel(eng, ALICE, ("a",), [(1,), (2,), (3,)], [5, 0, 7])
        res = oblivious_join(eng, {"R": r}, [], pad_out_to=6)
        assert len(res.tuples) == 6
        vals = res.annotations.reconstruct()
        nonzero = {
            t: int(v) for t, v in zip(res.tuples, vals) if int(v)
        }
        assert nonzero == {(1,): 5, (3,): 7}

    def test_bob_sees_declared_size(self):
        eng = mk_engine()
        r = shared_rel(eng, ALICE, ("a",), [(1,)], [9])
        oblivious_join(eng, {"R": r}, [], pad_out_to=5)
        # transcript carries OUT after padding; the traffic after the
        # size disclosure scales with 5, not with 1
        sizes = [
            m
            for m in eng.ctx.transcript.messages
            if m.label.endswith("out_size")
        ]
        assert len(sizes) == 1

    def test_transcript_hides_true_out(self):
        """Same declared bound, different true OUT -> identical traffic."""

        def run(annots):
            eng = mk_engine(seed=7)
            r = shared_rel(
                eng, ALICE, ("a",), [(i,) for i in range(4)], annots
            )
            oblivious_join(eng, {"R": r}, [], pad_out_to=4)
            return eng.ctx.transcript.fingerprint()

        assert run([1, 1, 1, 1]) == run([0, 0, 0, 1])

    def test_bound_violation_raises(self):
        eng = mk_engine()
        r = shared_rel(eng, ALICE, ("a",), [(1,), (2,)], [1, 1])
        with pytest.raises(ValueError):
            oblivious_join(eng, {"R": r}, [], pad_out_to=1)

    def test_protocol_level_padding(self):
        eng = mk_engine()
        r1 = AnnotatedRelation(
            ("a", "b"), [(1, 1), (2, 2)], [3, 4], RING
        )
        r2 = AnnotatedRelation(("b",), [(1,), (2,)], [1, 1], RING)
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b",)})
        plan = build_plan(
            find_free_connex_tree(h, {"a", "b"}), ("a", "b")
        )
        sec = {
            "R1": SecureRelation.from_annotated(ALICE, r1),
            "R2": SecureRelation.from_annotated(BOB, r2),
        }
        res = secure_yannakakis_shared(eng, sec, plan, pad_out_to=10)
        assert len(res.tuples) == 10
        vals = res.annotations.reconstruct()
        real = {t for t, v in zip(res.tuples, vals) if int(v)}
        assert real == {(1, 1), (2, 2)}
