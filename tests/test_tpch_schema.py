"""The columnar Table abstraction and its relation views."""

import numpy as np
import pytest

from repro.core import is_dummy_tuple
from repro.relalg import IntegerRing
from repro.tpch.schema import Table, date_ordinal, year_of_ordinals


@pytest.fixture
def table():
    return Table(
        "t",
        {
            "k": np.asarray([1, 2, 3], dtype=np.int64),
            "price": np.asarray([100, 200, 300], dtype=np.int64),
            "name": ["aa", "bbb", "c"],
        },
    )


class TestTable:
    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError):
            Table("t", {"a": [1, 2], "b": [1]})

    def test_n_rows(self, table):
        assert table.n_rows == 3

    def test_column_bytes_numeric_and_text(self, table):
        assert table.column_bytes(["k"]) == 12  # 3 x 4 bytes
        assert table.column_bytes(["name"]) == len("aa") + len("bbb") + 1

    def test_to_relation_defaults_to_ones(self, table):
        rel = table.to_relation(["k"])
        assert list(rel.annotations) == [1, 1, 1]
        assert rel.tuples == [(1,), (2,), (3,)]

    def test_to_relation_values_are_python_ints(self, table):
        rel = table.to_relation(["k", "name"])
        assert all(isinstance(t[0], int) for t in rel.tuples)

    def test_annotation_callable(self, table):
        rel = table.to_relation(
            ["k"], annotation=lambda cols: np.asarray(cols["price"]) * 2
        )
        assert list(rel.annotations) == [200, 400, 600]

    def test_annotation_shape_validated(self, table):
        with pytest.raises(ValueError):
            table.to_relation(
                ["k"], annotation=lambda cols: np.asarray([1])
            )

    def test_mask_makes_dummies(self, table):
        rel = table.to_relation(
            ["k"], mask=np.asarray([True, False, True])
        )
        assert len(rel) == 3
        assert is_dummy_tuple(rel.tuples[1])
        assert list(rel.annotations) == [1, 0, 1]

    def test_custom_semiring(self, table):
        rel = table.to_relation(["k"], semiring=IntegerRing(8))
        assert rel.semiring == IntegerRing(8)


class TestDates:
    def test_ordinal_order(self):
        assert date_ordinal("1995-03-13") - date_ordinal("1995-03-12") == 1

    def test_year_extraction(self):
        ords = np.asarray(
            [date_ordinal("1995-06-01"), date_ordinal("1998-01-01")]
        )
        assert list(year_of_ordinals(ords)) == [1995, 1998]

    def test_year_extraction_caches(self):
        ords = np.asarray([date_ordinal("1995-06-01")] * 1000)
        assert (year_of_ordinals(ords) == 1995).all()
