"""The plaintext 3-phase Yannakakis algorithm against the naive oracle."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import (
    build_plan,
    execute_plan,
    naive_join_aggregate,
    yannakakis,
)

RING = IntegerRing(32)


def make_rel(attrs, tuples, annots=None):
    return AnnotatedRelation(attrs, tuples, annots, RING)


class TestPaperExamples:
    def test_example_1_1(self):
        r1 = make_rel(
            ("person", "coins", "state"),
            [("p1", 20, "NY"), ("p2", 50, "CA")],
            [80, 50],
        )
        r2 = make_rel(
            ("person", "disease", "cost"),
            [
                ("p1", "flu", 100),
                ("p1", "cold", 30),
                ("p2", "flu", 200),
                ("p3", "flu", 70),
            ],
            [100, 30, 200, 70],
        )
        r3 = make_rel(("disease", "cls"), [("flu", "resp"), ("cold", "resp")])
        rels = {"R1": r1, "R2": r2, "R3": r3}
        out = yannakakis(rels, ["cls"])
        assert out.to_dict() == {("resp",): 20400}

    def test_non_free_connex_raises(self):
        rels = {
            "R1": make_rel(("a", "b"), [(1, 2)]),
            "R2": make_rel(("b", "c"), [(2, 3)]),
            "R3": make_rel(("a", "c"), [(1, 3)]),
        }
        with pytest.raises(ValueError):
            yannakakis(rels, ["a"])

    def test_count_query(self):
        # All-ones annotations compute the join-count (Section 6.5).
        r1 = make_rel(("a", "b"), [(1, 1), (1, 2), (2, 1)])
        r2 = make_rel(("b", "c"), [(1, 5), (1, 6), (2, 5)])
        out = yannakakis({"R1": r1, "R2": r2}, [])
        # b=1: 2 tuples in R1 x 2 in R2; b=2: 1 x 1.
        assert out.to_dict() == {(): 5}

    def test_output_column_order_matches_request(self):
        r1 = make_rel(("a", "b"), [(1, 2)], [3])
        out = yannakakis({"R1": r1}, ["b", "a"])
        assert out.attributes == ("b", "a")
        assert out.tuples == [(2, 1)]

    def test_missing_relation_raises(self):
        r1 = make_rel(("a", "b"), [(1, 2)])
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        tree = find_free_connex_tree(h, {"b"})
        plan = build_plan(tree, ("b",))
        with pytest.raises(KeyError):
            execute_plan(plan, {"R1": r1})


SHAPES = {
    "chain3": (
        {"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d")},
        [("a",), ("b", "c"), (), ("d",)],
    ),
    "star": (
        {"F": ("a", "b", "c"), "D1": ("a", "x"), "D2": ("b", "y")},
        [("a", "b"), ("x",), ()],
    ),
    "snowflake": (
        {
            "F": ("a", "b"),
            "D1": ("a", "x"),
            "D2": ("b", "y"),
            "E1": ("x", "u"),
        },
        [("a",), ("y",), ()],
    ),
    "product": (
        {"R1": ("a", "b"), "R2": ("c",)},
        [("a", "c"), (), ("c",)],
    ),
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_random_queries_match_naive(shape):
    schema, outputs = SHAPES[shape]
    rng = np.random.default_rng(hash(shape) % 2**31)
    for output in outputs:
        for trial in range(4):
            rels = {}
            for name, attrs in schema.items():
                n = int(rng.integers(0, 9))
                tuples = [
                    tuple(int(v) for v in rng.integers(0, 4, len(attrs)))
                    for _ in range(n)
                ]
                rels[name] = make_rel(
                    attrs, tuples, rng.integers(0, 20, n)
                )
            h = Hypergraph(schema)
            tree = find_free_connex_tree(h, set(output))
            if tree is None:
                continue
            got = yannakakis(rels, list(output), tree)
            expect = naive_join_aggregate(rels, list(output))
            assert got.semantically_equal(expect), (
                shape,
                output,
                got.to_dict(),
                expect.to_dict(),
            )


@given(data=st.data())
def test_hypothesis_chain_queries(data):
    """Chains R1(a,b)-R2(b,c) with arbitrary small data, every output set."""
    def tuples_for(arity):
        n = data.draw(st.integers(0, 7))
        return [
            tuple(data.draw(st.integers(0, 3)) for _ in range(arity))
            for _ in range(n)
        ]

    r1_t, r2_t = tuples_for(2), tuples_for(2)
    r1 = make_rel(("a", "b"), r1_t, [data.draw(st.integers(0, 9)) for _ in r1_t])
    r2 = make_rel(("b", "c"), r2_t, [data.draw(st.integers(0, 9)) for _ in r2_t])
    rels = {"R1": r1, "R2": r2}
    # Note ("a", "c") is excluded: projecting out the middle attribute of
    # a chain is the textbook non-free-connex query.
    output = data.draw(
        st.sampled_from([(), ("a",), ("b",), ("a", "b"), ("a", "b", "c")])
    )
    got = yannakakis(rels, list(output))
    expect = naive_join_aggregate(rels, list(output))
    assert got.semantically_equal(expect)


def test_plan_describe_lists_phases():
    h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
    tree = find_free_connex_tree(h, {"b"})
    plan = build_plan(tree, ("b",))
    text = plan.describe()
    assert "-- reduce --" in text
    assert "-- semijoin --" in text
    assert "-- full join --" in text
