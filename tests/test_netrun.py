"""Two-process execution: real sockets, SIGKILL, ``--resume``.

Each test here launches both parties of Q3 as separate OS processes
(``python -m repro net``) over a localhost TCP socket and checks the
tentpole equality: whatever is done to the processes — nothing, a
SIGKILL mid-plan followed by ``--resume``, a dropped connection, a
partition — both parties' run profiles (rows, per-section accounting,
transcript fingerprint) must come out byte-identical to the solo
in-process baseline.
"""

import pytest

from repro.runtime import (
    NetConfig,
    ProcessFaultSpec,
    build_process_specs,
    run_scenario,
    solo_profile,
)

CONFIG = NetConfig(role="alice", query="Q3", scale_mb=0.1, seed=7)


@pytest.fixture(scope="module")
def baseline():
    return solo_profile(CONFIG)


def scenario(baseline, tmp_path, fault):
    outcome = run_scenario(
        CONFIG, baseline, fault, str(tmp_path), timeout_s=90.0
    )
    assert outcome.classification == "completed-correct", str(outcome)
    return outcome


class TestTwoProcess:
    def test_clean_run_matches_solo(self, baseline, tmp_path):
        outcome = scenario(baseline, tmp_path, None)
        assert not outcome.resumed
        assert outcome.reconnects == 0

    def test_sigkill_mid_plan_resumes_to_parity(self, baseline, tmp_path):
        node = baseline.nodes_seen[len(baseline.nodes_seen) // 2]
        outcome = scenario(
            baseline, tmp_path,
            ProcessFaultSpec("kill-node", node=node, party="bob"),
        )
        assert outcome.resumed

    def test_sigkill_at_first_node(self, baseline, tmp_path):
        outcome = scenario(
            baseline, tmp_path,
            ProcessFaultSpec(
                "kill-node", node=baseline.nodes_seen[0], party="alice"
            ),
        )
        assert outcome.resumed

    def test_sigkill_at_last_node(self, baseline, tmp_path):
        outcome = scenario(
            baseline, tmp_path,
            ProcessFaultSpec(
                "kill-node", node=baseline.nodes_seen[-1], party="bob"
            ),
        )
        assert outcome.resumed

    def test_dropped_connection_reconnects_transparently(
        self, baseline, tmp_path
    ):
        outcome = scenario(
            baseline, tmp_path,
            ProcessFaultSpec(
                "drop", wire=baseline.n_messages // 2, party="bob"
            ),
        )
        assert not outcome.resumed  # no restart: in-transport recovery
        assert outcome.reconnects >= 1

    def test_partition_heals(self, baseline, tmp_path):
        outcome = scenario(
            baseline, tmp_path,
            ProcessFaultSpec("partition", wire=10, party="alice", ms=300),
        )
        assert outcome.reconnects >= 1


class TestSpecBuilder:
    def test_kill_covers_every_node(self, baseline):
        specs = build_process_specs(baseline, kinds=("kill-node",))
        assert sorted(s.node for s in specs) == sorted(
            baseline.nodes_seen
        )
        assert {s.party for s in specs} == {"alice", "bob"}

    def test_wire_kinds_stride(self, baseline):
        specs = build_process_specs(
            baseline, kinds=("drop",), stride=10
        )
        assert [s.wire for s in specs] == list(
            range(0, baseline.n_messages, 10)
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ProcessFaultSpec("kill-node")  # needs a node
        with pytest.raises(ValueError):
            ProcessFaultSpec("drop")  # needs a wire index
        with pytest.raises(ValueError):
            ProcessFaultSpec("nonsense", wire=0)

    def test_flags_round_trip_kinds(self):
        assert ProcessFaultSpec("kill-node", node=3).flags() == [
            "--kill-at-node", "3",
        ]
        assert ProcessFaultSpec("partition", wire=5, ms=250).flags() == [
            "--partition-at-wire", "5", "--partition-ms", "250",
        ]
