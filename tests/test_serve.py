"""Serving-layer unit and property tests.

Three battery sections:

* **plan-cache keying** (hypothesis over fuzz-generated instances):
  identical logical queries — including value-disjoint twins, which
  differ in every private value — share one cache entry; flipping any
  transcript-shaping public input (owners, schema, ``ell``, input
  order) misses; and a cached run is byte-identical to a cold one,
  covering both the compiled-plan entry and the pre-warmed
  :class:`~repro.mpc.runcache.SetupStore`.

* **admission control**: exact admit/queue/reject boundaries against
  the estimator's price, reservation accounting, queue draining on
  settle/replenish, and the regression that a rejected request moves
  **zero** protocol bytes (no context, no transcript sends).

* **service runs**: deterministic interleaving, cross-tenant plan
  sharing, and served results equal to a direct ``run_secure``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.estimator import CostEstimate, estimate_query_cost
from repro.fuzz.generator import (
    GeneratorConfig,
    generate_instance,
    value_disjoint_twin,
)
from repro.mpc import Context, Transcript
from repro.query.builder import JoinAggregateQuery
from repro.relalg import AnnotatedRelation, IntegerRing
from repro.serve import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionController,
    PlanCache,
    QueryRequest,
    QueryService,
    fingerprint_document,
    plan_fingerprint,
    run_solo,
)

from .conftest import make_engine

pytestmark = pytest.mark.serve

#: Small instances keep each protocol run in the tens of messages.
SMALL = GeneratorConfig(max_relations=3, max_tuples=4)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def fuzz_query(master_seed: int, index: int = 0) -> JoinAggregateQuery:
    return generate_instance(master_seed, index, SMALL).query()


def tiny_query(ell: int = 32, order: str = "rs") -> JoinAggregateQuery:
    """A fixed two-relation query, parameterised on the fingerprint
    axes the fuzz generator cannot isolate (ell, insertion order)."""
    ring = IntegerRing(ell)
    r = AnnotatedRelation(("a", "b"), [(1, 2), (3, 4)], [1, 1], ring)
    s = AnnotatedRelation(("b", "c"), [(2, 5), (4, 6)], [1, 1], ring)
    q = JoinAggregateQuery(output=("a",))
    if order == "rs":
        q.add_relation("R", r, owner="alice")
        q.add_relation("S", s, owner="bob")
    else:
        q.add_relation("S", s, owner="bob")
        q.add_relation("R", r, owner="alice")
    return q


class TestFingerprint:
    @given(seed=seeds)
    def test_deterministic_and_content_independent(self, seed):
        inst = generate_instance(seed, 0, SMALL)
        twin = value_disjoint_twin(inst)
        fp = plan_fingerprint(inst.query())
        assert fp == plan_fingerprint(inst.query())
        # The twin shares no attribute value with the original, yet
        # has the same public shape: same fingerprint.
        assert fp == plan_fingerprint(twin.query())

    @given(seed=seeds)
    def test_owner_flip_misses(self, seed):
        q = fuzz_query(seed)
        assert plan_fingerprint(q) != plan_fingerprint(q.swap_owners())

    def test_ell_change_misses(self):
        assert plan_fingerprint(tiny_query(ell=32)) != plan_fingerprint(
            tiny_query(ell=48)
        )

    def test_input_order_in_key(self):
        # compile_plan emits ShareSteps in insertion order, so two
        # queries over the same relations in different order must not
        # share a compiled plan.
        fp_rs = plan_fingerprint(tiny_query(order="rs"))
        fp_sr = plan_fingerprint(tiny_query(order="sr"))
        assert fp_rs != fp_sr
        doc = fingerprint_document(tiny_query(order="rs"))
        assert doc["input_order"] == ["R", "S"]

    def test_schema_change_misses(self):
        base = tiny_query()
        ring = IntegerRing(32)
        renamed = JoinAggregateQuery(output=("a",))
        renamed.add_relation(
            "R",
            AnnotatedRelation(("a", "d"), [(1, 2), (3, 4)], [1, 1], ring),
            owner="alice",
        )
        renamed.add_relation(
            "S",
            AnnotatedRelation(("d", "c"), [(2, 5), (4, 6)], [1, 1], ring),
            owner="bob",
        )
        assert plan_fingerprint(base) != plan_fingerprint(renamed)

    def test_compile_flags_in_key(self):
        q = tiny_query()
        assert plan_fingerprint(q, reveal_result=True) != plan_fingerprint(
            q, reveal_result=False
        )
        assert plan_fingerprint(q, pad_out_to=0) != plan_fingerprint(
            q, pad_out_to=16
        )


class TestPlanCache:
    @given(seed=seeds)
    def test_identical_logical_queries_hit(self, seed):
        inst = generate_instance(seed, 0, SMALL)
        cache = PlanCache()
        first = cache.get(inst.query(), tenant="t1")
        again = cache.get(inst.query(), tenant="t2")
        twin = cache.get(value_disjoint_twin(inst).query(), tenant="t3")
        assert first is again is twin
        assert cache.stats()["plan_entries"] == 1
        assert cache.stats()["plan_hits"] == 2
        assert first.tenants == {"t1": 1, "t2": 1, "t3": 1}

    @given(seed=seeds)
    def test_owner_flip_gets_own_entry(self, seed):
        q = fuzz_query(seed)
        cache = PlanCache()
        assert cache.get(q) is not cache.get(q.swap_owners())
        assert cache.stats()["plan_entries"] == 2

    @settings(max_examples=10)
    @given(seed=seeds)
    def test_cached_run_byte_identical_to_cold(self, seed):
        """The hard guarantee of sharing: a run through a cache
        pre-warmed by another tenant (compiled plan AND setup store)
        is byte-identical to a cold private-cache run."""
        inst = generate_instance(seed, 0, SMALL)
        req = lambda q: QueryRequest(  # noqa: E731
            tenant="t", name="q", query=q, seed=5
        )
        cold = run_solo(req(inst.query()))
        assert cold.state == "done", repr(cold.error)

        cache = PlanCache()
        # Pre-warm with the value-disjoint twin: same entry, and the
        # twin's run fills the shared SetupStore.
        warmup = run_solo(
            QueryRequest(
                tenant="other",
                name="warm",
                query=value_disjoint_twin(inst).query(),
                seed=6,
            ),
            plan_cache=cache,
        )
        assert warmup.state == "done", repr(warmup.error)
        warm = run_solo(req(inst.query()), plan_cache=cache)
        assert warm.state == "done", repr(warm.error)
        assert cache.stats()["plan_hits"] >= 1
        assert warm.profile is not None and cold.profile is not None
        assert warm.profile.diff(cold.profile) == ""
        assert warm.profile.fingerprint == cold.profile.fingerprint


class TestSetupStoreViews:
    def test_counters_per_view_material_shared(self):
        """Sessions count their own hits/misses; the material lives in
        the shared store.  A default-constructed RunCache keeps a
        private store, so tests that assert hit/miss counts stay
        order-independent."""
        from repro.mpc.gadgets import merge_sum_circuit
        from repro.mpc.runcache import RunCache, SetupStore

        store = SetupStore()
        a = RunCache(store=store)
        b = RunCache(store=store)
        assert a.circuit(merge_sum_circuit, 32, 4) is b.circuit(
            merge_sum_circuit, 32, 4
        )
        assert a.stats()["circuit_misses"] == 1
        assert a.stats()["circuit_hits"] == 0
        assert b.stats()["circuit_misses"] == 0
        assert b.stats()["circuit_hits"] == 1
        assert a.benes_topology(8) is b.benes_topology(8)
        assert store.sizes() == {
            "circuit_templates": 1,
            "topologies": 1,
            "garble_plans": 0,
        }
        # a fresh default cache shares nothing with the store above
        private = RunCache()
        private.circuit(merge_sum_circuit, 32, 4)
        assert private.stats()["circuit_misses"] == 1
        assert store.sizes()["circuit_templates"] == 1


def priced(total: int, rounds: int = 0) -> CostEstimate:
    est = CostEstimate()
    est.add("test", total)
    est.add_rounds(rounds)
    return est


class TestAdmissionController:
    def test_exact_boundaries(self):
        ctl = AdmissionController()
        ctl.register("t", byte_capacity=100, round_capacity=10)
        # over total capacity: reject, never queue
        assert ctl.decide("t", priced(101)) == REJECT
        assert ctl.decide("t", priced(50, rounds=11)) == REJECT
        # exactly at capacity: admit
        assert ctl.decide("t", priced(100, rounds=10)) == ADMIT
        # capacity now reserved: fits total capacity -> queue
        assert ctl.decide("t", priced(1)) == QUEUE
        assert len(ctl.waiting) == 1

    def test_settle_frees_reservation_and_drain_admits(self):
        ctl = AdmissionController()
        ctl.register("t", byte_capacity=100)
        assert ctl.decide("t", priced(80), payload="first") == ADMIT
        assert ctl.decide("t", priced(60), payload="second") == QUEUE
        # Actual metered cost below the estimate: settling frees room.
        ctl.settle("t", priced(80), actual_bytes=30, actual_rounds=0)
        assert ctl.drain() == ["second"]
        b = ctl.budgets["t"]
        assert b.bytes_spent == 30 and b.bytes_reserved == 60

    def test_replenish_resets_window(self):
        ctl = AdmissionController()
        ctl.register("t", byte_capacity=100)
        assert ctl.decide("t", priced(100), payload="a") == ADMIT
        ctl.settle("t", priced(100), actual_bytes=100, actual_rounds=0)
        assert ctl.decide("t", priced(100), payload="b") == QUEUE
        assert ctl.replenish("t") == ["b"]
        assert ctl.budgets["t"].bytes_spent == 0
        assert ctl.budgets["t"].bytes_reserved == 100

    def test_fifo_per_tenant_no_cross_blocking(self):
        ctl = AdmissionController()
        ctl.register("t1", byte_capacity=10)
        ctl.register("t2", byte_capacity=10)
        assert ctl.decide("t1", priced(10), payload="t1-a") == ADMIT
        assert ctl.decide("t1", priced(5), payload="t1-b") == QUEUE
        assert ctl.decide("t2", priced(10), payload="t2-a") == ADMIT
        assert ctl.decide("t2", priced(4), payload="t2-b") == QUEUE
        # only t2 frees budget: t2-b admits, t1-b keeps its place
        ctl.settle("t2", priced(10), actual_bytes=0, actual_rounds=0)
        assert ctl.drain() == ["t2-b"]
        assert [r.payload for r in ctl.waiting] == ["t1-b"]

    def test_unpriced_policy(self):
        ctl = AdmissionController()
        ctl.register("lenient", byte_capacity=10)
        ctl.register("strict", byte_capacity=10, require_priced=True)
        assert ctl.decide("lenient", None) == ADMIT
        assert ctl.decide("strict", None) == REJECT
        # unknown tenants are unmetered
        assert ctl.decide("nobody", priced(10**9)) == ADMIT


class TestAdmissionInService:
    def test_estimator_priced_boundaries(self):
        q = fuzz_query(11)
        cost = estimate_query_cost(q, group_bits=1536)
        svc = QueryService()
        svc.register_tenant("t", byte_capacity=cost.total)
        req = lambda n: QueryRequest(  # noqa: E731
            tenant="t", name=n, query=fuzz_query(11), seed=5
        )
        assert svc.submit(req("q1")) == ADMIT
        assert svc.submit(req("q2")) == QUEUE

        tight = QueryService()
        tight.register_tenant("t", byte_capacity=cost.total - 1)
        assert tight.submit(req("q3")) == REJECT

    def test_rejection_moves_zero_protocol_bytes(self, monkeypatch):
        """Regression: a rejected request must be turned away before a
        context — let alone a transcript byte — exists."""
        contexts = []
        sends = []
        orig_init = Context.__init__
        orig_send = Transcript.send

        def spy_init(self, *a, **kw):
            contexts.append(self)
            return orig_init(self, *a, **kw)

        def spy_send(self, *a, **kw):
            sends.append(a)
            return orig_send(self, *a, **kw)

        monkeypatch.setattr(Context, "__init__", spy_init)
        monkeypatch.setattr(Transcript, "send", spy_send)

        svc = QueryService()
        svc.register_tenant("t", byte_capacity=1)
        decision = svc.submit(
            QueryRequest(tenant="t", name="big", query=fuzz_query(11))
        )
        assert decision == REJECT
        assert svc.sessions == []
        assert contexts == [] and sends == []
        report = svc.run()
        assert report.counts == {"rejected": 1}

    def test_queued_request_runs_after_settlement(self):
        q = fuzz_query(11)
        cost = estimate_query_cost(q, group_bits=1536)
        svc = QueryService()
        # room for one reservation at a time, two windows of actuals
        svc.register_tenant("t", byte_capacity=cost.total)
        mk = lambda n: QueryRequest(  # noqa: E731
            tenant="t", name=n, query=fuzz_query(11), seed=5
        )
        assert svc.submit(mk("first")) == ADMIT
        assert svc.submit(mk("second")) == QUEUE
        svc.run()
        # first settled under estimate; if actuals left room the queue
        # drained mid-run, otherwise replenish admits it.
        if any(s.request.name == "second" for s in svc.sessions):
            pass
        else:
            assert svc.replenish() == 1
            svc.run()
        states = {s.request.name: s.state for s in svc.sessions}
        assert states == {"first": "done", "second": "done"}


class TestService:
    def test_served_result_matches_direct_run(self):
        inst = generate_instance(23, 0, SMALL)
        session = run_solo(
            QueryRequest(tenant="t", name="q", query=inst.query(), seed=5)
        )
        assert session.state == "done", repr(session.error)
        direct, _ = inst.query().run_secure(make_engine(seed=5))
        served = sorted(
            (tuple(row), int(v)) for row, v in session.result
        )
        expected = sorted((tuple(row), int(v)) for row, v in direct)
        assert served == expected

    @pytest.mark.parametrize("interleave", ["round_robin", "clock"])
    def test_deterministic_interleaving(self, interleave):
        def run_once():
            svc = QueryService(interleave=interleave)
            for i, seed in enumerate((31, 32, 33)):
                svc.submit(
                    QueryRequest(
                        tenant=f"t{i}",
                        name=f"q{i}",
                        query=fuzz_query(seed),
                        seed=5,
                    )
                )
            report = svc.run()
            return (
                report.n_steps,
                [s.profile.fingerprint for s in svc.sessions],
            )

        assert run_once() == run_once()

    def test_plan_shared_across_tenants(self):
        inst = generate_instance(41, 0, SMALL)
        svc = QueryService()
        svc.submit(
            QueryRequest(
                tenant="t1", name="q", query=inst.query(), seed=5
            )
        )
        svc.submit(
            QueryRequest(
                tenant="t2",
                name="q",
                query=value_disjoint_twin(inst).query(),
                seed=6,
            )
        )
        report = svc.run()
        assert report.counts == {"done": 2}
        assert report.plan_cache["plan_entries"] == 1
        assert report.plan_cache["plan_hits"] == 1
        entry = next(iter(svc.plan_cache.entries.values()))
        assert set(entry.tenants) == {"t1", "t2"}

    def test_trace_namespaced_per_tenant(self):
        svc = QueryService()
        svc.submit(
            QueryRequest(tenant="t1", name="qa", query=fuzz_query(51))
        )
        svc.submit(
            QueryRequest(tenant="t2", name="qb", query=fuzz_query(52))
        )
        svc.run()
        metas = [
            (s.trace.meta["tenant"], s.trace.meta["request"])
            for s in svc.sessions
        ]
        assert metas == [("t1", "qa"), ("t2", "qb")]
        assert all(len(s.trace.nodes) > 0 for s in svc.sessions)


class TestLeakageAdmission:
    """Tenant-pinned leakage budgets: the plan-level audit runs at
    submit time, before any protocol byte moves."""

    def _cross_owner_query(self, backend):
        q = tiny_query()
        q.set_backend(backend)
        return q

    def test_pinned_tenant_rejects_leaky_route(self):
        svc = QueryService()
        svc.register_tenant(
            "sealed", byte_capacity=1 << 30, allowed_leakage=frozenset()
        )
        linear = self._cross_owner_query("linear")
        assert svc.plan_leakage(
            QueryRequest(tenant="sealed", name="q", query=linear)
        ) == frozenset({"join_pattern:parent"})
        assert (
            svc.submit(
                QueryRequest(tenant="sealed", name="q", query=linear)
            )
            == REJECT
        )
        snap = svc.admission.snapshot()["sealed"]
        assert snap["leakage_rejected"] == 1
        assert svc.sessions == []

    def test_pinned_tenant_admits_oblivious_route(self):
        svc = QueryService()
        svc.register_tenant(
            "sealed", byte_capacity=1 << 30, allowed_leakage=frozenset()
        )
        decision = svc.submit(
            QueryRequest(
                tenant="sealed",
                name="q",
                query=self._cross_owner_query("yannakakis"),
                seed=3,
            )
        )
        assert decision == ADMIT
        report = svc.run()
        assert report.counts == {"done": 1}

    def test_budgeted_tenant_admits_declared_leakage(self):
        svc = QueryService()
        svc.register_tenant(
            "audited",
            byte_capacity=1 << 30,
            allowed_leakage=frozenset({"join_pattern:parent"}),
        )
        decision = svc.submit(
            QueryRequest(
                tenant="audited",
                name="q",
                query=self._cross_owner_query("linear"),
                seed=3,
            )
        )
        assert decision == ADMIT

    def test_unpinned_tenant_unaffected(self):
        svc = QueryService()
        svc.register_tenant("loose", byte_capacity=1 << 30)
        decision = svc.submit(
            QueryRequest(
                tenant="loose",
                name="q",
                query=self._cross_owner_query("linear"),
            )
        )
        assert decision == ADMIT
