"""SecureRelation / SecureAnnotations and dummy-tuple mechanics."""

import numpy as np
import pytest

from repro.core import SecureAnnotations, SecureRelation
from repro.core.relation import dummy_tuple, is_dummy_tuple, sort_key
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import AnnotatedRelation, IntegerRing

RING = IntegerRing(32)


@pytest.fixture
def engine():
    return Engine(Context(Mode.SIMULATED, seed=9))


class TestDummies:
    def test_distinct(self):
        assert dummy_tuple(2) != dummy_tuple(2)

    def test_projection_preserves_dummy_identity(self):
        d = dummy_tuple(3)
        assert d[0] == d[1] == d[2]
        assert is_dummy_tuple((d[0],))

    def test_detection(self):
        assert is_dummy_tuple(dummy_tuple(1))
        assert not is_dummy_tuple((1, "a"))
        # a tuple with one dummy slot is still dummy-ish
        assert is_dummy_tuple((1, dummy_tuple(1)[0]))

    def test_zero_arity(self):
        assert dummy_tuple(0) == ()


class TestSortKey:
    def test_total_order_over_mixed_types(self):
        values = [(1,), ("a",), (dummy_tuple(1)[0],), (2, 3)]
        keys = [sort_key(v) for v in values]
        assert sorted(keys) is not None  # comparable
        assert len(set(keys)) == len(keys)

    def test_equal_tuples_equal_keys(self):
        assert sort_key((1, "x")) == sort_key((1, "x"))


class TestSecureAnnotations:
    def test_plain_roundtrip(self):
        a = SecureAnnotations.plain(ALICE, [1, 2, 3])
        assert a.kind == "plain" and len(a) == 3
        assert list(a.reconstruct()) == [1, 2, 3]

    def test_to_shared_charges_once(self, engine):
        a = SecureAnnotations.plain(BOB, [5, 6])
        before = engine.ctx.transcript.total_bytes
        sv = a.to_shared(engine)
        assert engine.ctx.transcript.total_bytes > before
        assert list(sv.reconstruct()) == [5, 6]

    def test_shared_passthrough(self, engine):
        sv = engine.share(ALICE, [7])
        a = SecureAnnotations.shared(sv)
        assert a.to_shared(engine) is sv
        assert list(a.reconstruct()) == [7]


class TestSecureRelation:
    def test_from_annotated(self):
        rel = AnnotatedRelation(("a",), [(1,), (2,)], [3, 4], RING)
        sec = SecureRelation.from_annotated(BOB, rel)
        assert sec.owner == BOB
        assert sec.annotations.kind == "plain"
        assert sec.project_tuples(["a"]) == [(1,), (2,)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SecureRelation(
                ALICE, ("a",), [(1,)],
                SecureAnnotations.plain(ALICE, [1, 2]),
            )

    def test_index_of_unknown(self):
        rel = AnnotatedRelation(("a",), [(1,)], None, RING)
        sec = SecureRelation.from_annotated(ALICE, rel)
        with pytest.raises(KeyError):
            sec.index_of(["zz"])

    def test_to_annotated_roundtrip(self, engine):
        rel = AnnotatedRelation(("a", "b"), [(1, 2)], [9], RING)
        sec = SecureRelation.from_annotated(ALICE, rel)
        sec.annotations = SecureAnnotations.shared(
            engine.share(ALICE, rel.annotations)
        )
        back = sec.to_annotated(engine.ctx)
        assert back.semantically_equal(rel)
