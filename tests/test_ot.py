"""Oblivious transfer: base OT, IKNP extension, simulated OT."""

import numpy as np
import pytest

from repro.mpc import Context, Mode
from repro.mpc.modp import modp_group
from repro.mpc.ot import ChouOrlandiOT, IknpExtension, SimulatedOT, make_ot

GROUP_BITS = 1536


def pairs_and_choices(rng, n):
    pairs = [(rng.bytes(16), rng.bytes(16)) for _ in range(n)]
    choices = [int(c) for c in rng.integers(0, 2, n)]
    expected = [p[1] if c else p[0] for p, c in zip(pairs, choices)]
    return pairs, choices, expected


class TestModpGroup:
    def test_rfc3526_2048_prefix(self):
        g = modp_group(2048)
        # RFC 3526 group 14 starts FFFFFFFF FFFFFFFF C90FDAA2...
        assert hex(g.p).startswith("0xffffffffffffffffc90fdaa2")

    def test_safe_prime_structure(self):
        g = modp_group(1536)
        assert (g.p - 1) % 2 == 0
        assert g.element_bytes == 1536 // 8

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            modp_group(1024)

    def test_inverse(self):
        g = modp_group(1536)
        x = 123456789
        assert (x * g.inv(x)) % g.p == 1


@pytest.mark.real
class TestChouOrlandi:
    def test_transfers_chosen_messages(self):
        ctx = Context(Mode.REAL, seed=1)
        ot = ChouOrlandiOT(ctx, GROUP_BITS)
        rng = np.random.default_rng(1)
        pairs, choices, expected = pairs_and_choices(rng, 6)
        assert ot.transfer(pairs, choices) == expected

    def test_length_mismatch_rejected(self):
        ctx = Context(Mode.REAL, seed=1)
        ot = ChouOrlandiOT(ctx, GROUP_BITS)
        with pytest.raises(ValueError):
            ot.transfer([(b"a" * 16, b"b" * 16)], [0, 1])

    def test_unequal_pair_lengths_rejected(self):
        ctx = Context(Mode.REAL, seed=1)
        ot = ChouOrlandiOT(ctx, GROUP_BITS)
        with pytest.raises(ValueError):
            ot.transfer([(b"a", b"bb")], [0])


@pytest.mark.real
class TestIknpExtension:
    def test_large_batch(self):
        ctx = Context(Mode.REAL, seed=2)
        ext = IknpExtension(ctx, GROUP_BITS)
        rng = np.random.default_rng(2)
        pairs, choices, expected = pairs_and_choices(rng, 300)
        assert ext.transfer(pairs, choices) == expected

    def test_multiple_batches_reuse_base(self):
        ctx = Context(Mode.REAL, seed=3)
        ext = IknpExtension(ctx, GROUP_BITS)
        rng = np.random.default_rng(3)
        p1, c1, e1 = pairs_and_choices(rng, 10)
        assert ext.transfer(p1, c1) == e1
        base_bytes = ctx.transcript.total_bytes
        p2, c2, e2 = pairs_and_choices(rng, 10)
        assert ext.transfer(p2, c2) == e2
        # Second batch must not re-run the (expensive) base phase.
        second = ctx.transcript.total_bytes - base_bytes
        assert second < base_bytes / 4

    def test_variable_message_lengths(self):
        ctx = Context(Mode.REAL, seed=4)
        ext = IknpExtension(ctx, GROUP_BITS)
        pairs = [(b"xx", b"yy"), (b"a" * 40, b"b" * 40)]
        assert ext.transfer(pairs, [1, 0]) == [b"yy", b"a" * 40]

    def test_empty_batch(self):
        ctx = Context(Mode.REAL, seed=5)
        assert IknpExtension(ctx, GROUP_BITS).transfer([], []) == []


class TestSimulatedOT:
    def test_delivers_and_charges(self):
        ctx = Context(Mode.SIMULATED, seed=6)
        ot = SimulatedOT(ctx)
        rng = np.random.default_rng(6)
        pairs, choices, expected = pairs_and_choices(rng, 64)
        assert ot.transfer(pairs, choices) == expected
        assert ctx.transcript.total_bytes > 0

    def test_charge_matches_real_extension_shape(self):
        """For the same batch, the simulated charge equals the real
        IKNP bytes (with the production 2048-bit base group)."""
        rng = np.random.default_rng(7)
        pairs, choices, _ = pairs_and_choices(rng, 128)

        real = Context(Mode.REAL, seed=8)
        IknpExtension(real, 2048).transfer(pairs, choices)
        sim = Context(Mode.SIMULATED, seed=8)
        SimulatedOT(sim).transfer(pairs, choices)
        assert real.transcript.total_bytes == sim.transcript.total_bytes

    def test_make_ot_dispatch(self):
        assert isinstance(make_ot(Context(Mode.SIMULATED)), SimulatedOT)
        assert isinstance(make_ot(Context(Mode.REAL)), IknpExtension)
