"""The 3-phase plan compiler: step structure on known trees."""

import pytest

from repro.relalg import Hypergraph, JoinTree
from repro.yannakakis.plan import (
    JoinStep,
    ReduceAggregate,
    ReduceFold,
    SemijoinStep,
    build_plan,
)


def chain_tree(root="R3"):
    h = Hypergraph(
        {"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d")}
    )
    return JoinTree(h, [("R1", "R2"), ("R2", "R3")], root)


class TestReducePhase:
    def test_full_collapse_when_output_at_root(self):
        plan = build_plan(chain_tree(), ("d",))
        folds = [s for s in plan.reduce_steps if isinstance(s, ReduceFold)]
        assert [(f.child, f.parent) for f in folds] == [
            ("R1", "R2"), ("R2", "R3"),
        ]
        assert plan.reduced_nodes == ["R3"]
        assert plan.semijoin_steps == []
        assert plan.join_steps == []

    def test_fold_aggregates_to_join_attrs(self):
        plan = build_plan(chain_tree(), ("d",))
        first = plan.reduce_steps[0]
        assert isinstance(first, ReduceFold)
        assert first.agg_attrs == ("b",)  # only the join attribute

    def test_stop_keeps_output_attrs(self):
        # Output spread over both ends: R1 must stop, not fold.
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        tree = JoinTree(h, [("R1", "R2")], "R2")
        plan = build_plan(tree, ("a", "b", "c"))
        assert not any(
            isinstance(s, ReduceFold) for s in plan.reduce_steps
        )
        assert set(plan.reduced_nodes) == {"R1", "R2"}

    def test_root_aggregated_to_output(self):
        plan = build_plan(chain_tree(), ())
        # everything folds into the root, which then aggregates to ()
        last = plan.reduce_steps[-1]
        assert isinstance(last, ReduceAggregate)
        assert last.node == "R3" and last.attrs == ()

    def test_invalid_tree_raises(self):
        # Grouping by a and c on a chain cannot compile on any root.
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        for root in ("R1", "R2"):
            tree = JoinTree(h, [("R1", "R2")], root)
            with pytest.raises(ValueError):
                build_plan(tree, ("a", "c"))

    def test_reduced_attrs_are_output_only(self):
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        tree = JoinTree(h, [("R1", "R2")], "R2")
        plan = build_plan(tree, ("a", "b", "c"))
        for node, attrs in plan.reduced_attrs.items():
            assert set(attrs) <= {"a", "b", "c"}


class TestSemijoinPhase:
    def test_two_passes_bottom_up_then_top_down(self):
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        tree = JoinTree(h, [("R1", "R2")], "R2")
        plan = build_plan(tree, ("a", "b", "c"))
        assert plan.semijoin_steps == [
            SemijoinStep(target="R2", filter="R1"),
            SemijoinStep(target="R1", filter="R2"),
        ]

    def test_join_steps_bottom_up(self):
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        tree = JoinTree(h, [("R1", "R2")], "R2")
        plan = build_plan(tree, ("a", "b", "c"))
        assert plan.join_steps == [JoinStep(child="R1", parent="R2")]

    def test_star_semijoin_count(self):
        h = Hypergraph(
            {"F": ("a", "b"), "D1": ("a", "x"), "D2": ("b", "y")}
        )
        tree = JoinTree(h, [("F", "D1"), ("F", "D2")], "F")
        plan = build_plan(tree, ("a", "b", "x", "y"))
        # D1, D2 stop (they carry output attrs outside F):
        # 2 bottom-up + 2 top-down semijoins
        assert len(plan.semijoin_steps) == 4

    def test_dimensions_contained_in_parent_fold(self):
        # A child whose attributes all lie inside the parent folds even
        # when they are output attributes (F' subset of Fp).
        h = Hypergraph(
            {"F": ("a", "b"), "D1": ("a",), "D2": ("b",)}
        )
        tree = JoinTree(h, [("F", "D1"), ("F", "D2")], "F")
        plan = build_plan(tree, ("a", "b"))
        assert plan.reduced_nodes == ["F"]
        assert len(plan.semijoin_steps) == 0


class TestPlanMetadata:
    def test_root_detected(self):
        plan = build_plan(chain_tree(), ("d",))
        assert plan.root == "R3"

    def test_reduced_parent_consistency(self):
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        tree = JoinTree(h, [("R1", "R2")], "R2")
        plan = build_plan(tree, ("a", "b", "c"))
        assert plan.reduced_parent == {"R2": None, "R1": "R2"}

    def test_describe_round_trips_step_names(self):
        plan = build_plan(chain_tree(), ("d",))
        text = plan.describe()
        assert "R1" in text and "SEMIJOIN" not in text  # fully collapsed
