"""Obliviousness fingerprints of the scheduler path on the five TPC-H
queries: the exec-layer pipeline must reproduce the legacy sequential
pipeline's transcript byte-for-byte on identical seeds at tiny scale.
"""

import pytest

import repro.query.builder as builder
from repro.core.protocol import (
    legacy_secure_yannakakis,
    legacy_secure_yannakakis_shared,
)
from repro.mpc import Engine, Mode
from repro.tpch import PREPARED, generate

pytestmark = pytest.mark.slow

SEED = 5


def prepare(name):
    dataset = generate(1)
    if name == "Q9":
        return PREPARED[name](dataset, nations=[8, 14])
    return PREPARED[name](dataset)


def run_transcript(query, *, legacy, monkeypatch):
    with monkeypatch.context() as mp:
        if legacy:
            mp.setattr(
                builder, "secure_yannakakis", legacy_secure_yannakakis
            )
            mp.setattr(
                builder,
                "secure_yannakakis_shared",
                legacy_secure_yannakakis_shared,
            )
        ctx = query.make_context(Mode.SIMULATED, seed=SEED)
        engine = Engine(ctx)
        result, stats = query.run_secure(engine)
    return ctx.transcript.fingerprint(), result


@pytest.mark.parametrize("name", ["Q3", "Q10", "Q18", "Q8", "Q9"])
def test_tpch_fingerprint_identity(name, monkeypatch):
    query = prepare(name)
    f_legacy, r_legacy = run_transcript(
        query, legacy=True, monkeypatch=monkeypatch
    )
    f_new, r_new = run_transcript(
        query, legacy=False, monkeypatch=monkeypatch
    )
    assert f_new == f_legacy
    assert r_new.semantically_equal(r_legacy)
