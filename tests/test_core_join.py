"""The oblivious join (Section 6.3) and the shared-payload PSI (5.5)."""

from functools import partial

import numpy as np
import pytest

from repro.core import (
    SecureAnnotations,
    SecureRelation,
    oblivious_join,
    psi_with_shared_payloads,
)
from repro.mpc import ALICE, BOB, Mode
from repro.relalg import AnnotatedRelation, IntegerRing, aggregate, join

from .conftest import make_engine

RING = IntegerRing(32)


mk_engine = partial(make_engine, seed=17)


def shared_rel(eng, owner, attrs, tuples, annots):
    rel = AnnotatedRelation(attrs, tuples, annots, RING)
    sec = SecureRelation.from_annotated(owner, rel)
    sec.annotations = SecureAnnotations.shared(
        eng.share(owner, rel.annotations)
    )
    return rel, sec


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestSharedPayloadPsi:
    def test_payload_shares_reach_matching_bins(self, mode):
        eng = mk_engine(mode)
        owner_items = [("k", i) for i in range(10)]
        other_items = [("k", i) for i in range(5, 17)]
        payloads = np.arange(100, 112)
        shares = eng.share(BOB, payloads)
        res = psi_with_shared_payloads(
            eng, ALICE, owner_items, other_items, shares
        )
        pay = res.payload.reconstruct()
        bins = res.bin_of_item_index()
        for j, item in enumerate(owner_items):
            b = bins[j]
            if item in set(other_items):
                assert pay[b] == payloads[other_items.index(item)]
            else:
                assert pay[b] == 0

    def test_reversed_orientation(self, mode):
        eng = mk_engine(mode)
        owner_items = [1, 2, 3]
        other_items = [2, 4]
        shares = eng.share(ALICE, [50, 60])
        res = psi_with_shared_payloads(
            eng, BOB, owner_items, other_items, shares
        )
        pay = res.payload.reconstruct()
        bins = res.bin_of_item_index()
        assert pay[bins[1]] == 50
        assert pay[bins[0]] == 0 and pay[bins[2]] == 0

    def test_share_count_validated(self, mode):
        eng = mk_engine(mode)
        with pytest.raises(ValueError):
            psi_with_shared_payloads(
                eng, ALICE, [1], [2, 3], eng.share(BOB, [1])
            )


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestObliviousJoin:
    def test_two_relation_join(self, mode):
        eng = mk_engine(mode)
        r1_plain, r1 = shared_rel(
            eng, ALICE, ("a", "b"),
            [(1, 1), (2, 2), (3, 3)], [2, 0, 4],
        )
        r2_plain, r2 = shared_rel(
            eng, BOB, ("b", "c"),
            [(1, 7), (3, 8), (9, 9)], [10, 20, 0],
        )
        res = oblivious_join(
            eng, {"R1": r1, "R2": r2}, [("R2", "R1")]
        )
        got = AnnotatedRelation(
            res.attributes, res.tuples,
            res.annotations.reconstruct(), RING,
        )
        # Note: dangling zero-annotated tuples are preconditions here;
        # (2,2) in r1 and (9,9) in r2 are zero-annotated as required.
        expect = join(r1_plain, r2_plain)
        assert got.semantically_equal(expect)

    def test_single_relation_reveal(self, mode):
        eng = mk_engine(mode)
        plain, sec = shared_rel(
            eng, BOB, ("a", "b"), [(1, "x"), (2, "y"), (3, "z")],
            [5, 0, 7],
        )
        res = oblivious_join(eng, {"R": sec}, [])
        assert sorted(res.tuples) == [(1, "x"), (3, "z")]
        vals = dict(zip(res.tuples, res.annotations.reconstruct()))
        assert vals[(1, "x")] == 5 and vals[(3, "z")] == 7

    def test_empty_join(self, mode):
        eng = mk_engine(mode)
        _, r1 = shared_rel(eng, ALICE, ("a",), [(1,)], [0])
        res = oblivious_join(eng, {"R1": r1}, [])
        assert res.tuples == [] and len(res.annotations) == 0

    def test_out_size_leaked_to_bob_only(self, mode):
        # The only thing Bob learns is |J*| (one 8-byte message).
        eng = mk_engine(mode)
        _, r1 = shared_rel(eng, ALICE, ("a",), [(1,), (2,)], [1, 1])
        oblivious_join(eng, {"R1": r1}, [])
        sizes = [
            m for m in eng.ctx.transcript.messages
            if m.label.endswith("out_size")
        ]
        assert len(sizes) == 1 and sizes[0].n_bytes == 8
        assert sizes[0].sender == ALICE


class TestJoinObliviousness:
    def test_traffic_depends_only_on_sizes_and_out(self):
        def run(keys1, keys2, annots1, annots2):
            eng = mk_engine(seed=23)
            _, r1 = shared_rel(
                eng, ALICE, ("a",), [(k,) for k in keys1], annots1
            )
            _, r2 = shared_rel(
                eng, BOB, ("a", "b"),
                [(k, k + 100) for k in keys2], annots2,
            )
            oblivious_join(eng, {"R1": r1, "R2": r2}, [("R2", "R1")])
            return eng.ctx.transcript.fingerprint()

        # Same |R1|, |R2| and same OUT (2 join rows) with different keys
        # and annotation values -> identical traffic.
        f1 = run([1, 2, 3], [1, 2], [1, 1, 0], [1, 1])
        f2 = run([7, 8, 9], [8, 9], [0, 2, 9], [3, 4])
        assert f1 == f2
