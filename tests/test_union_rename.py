"""The rename and K-relation union operators, and transcript JSON."""

import json

import pytest

from repro.mpc import ALICE, BOB, Transcript
from repro.relalg import AnnotatedRelation, IntegerRing, rename, union

RING = IntegerRing(16)


def rel(attrs, tuples, annots=None):
    return AnnotatedRelation(attrs, tuples, annots, RING)


class TestRename:
    def test_renames(self):
        r = rename(rel(("a", "b"), [(1, 2)]), {"a": "x"})
        assert r.attributes == ("x", "b")

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            rename(rel(("a",), []), {"z": "x"})


class TestUnion:
    def test_bag_union_adds_annotations(self):
        r1 = rel(("a",), [(1,), (2,)], [3, 4])
        r2 = rel(("a",), [(2,), (3,)], [10, 20])
        out = union(r1, r2)
        assert out.to_dict() == {(1,): 3, (2,): 14, (3,): 20}

    def test_column_order_reconciled(self):
        r1 = rel(("a", "b"), [(1, 2)], [1])
        r2 = rel(("b", "a"), [(2, 1)], [5])
        assert union(r1, r2).to_dict() == {(1, 2): 6}

    def test_attribute_set_mismatch(self):
        with pytest.raises(ValueError):
            union(rel(("a",), []), rel(("b",), []))

    def test_semiring_mismatch(self):
        other = AnnotatedRelation(("a",), [], None, IntegerRing(8))
        with pytest.raises(ValueError):
            union(rel(("a",), []), other)

    def test_union_with_empty(self):
        r = rel(("a",), [(1,)], [7])
        assert union(r, rel(("a",), [])).to_dict() == {(1,): 7}

    def test_cancellation(self):
        r1 = rel(("a",), [(1,)], [5])
        r2 = rel(("a",), [(1,)], [RING.modulus - 5])
        assert union(r1, r2).to_dict() == {}


class TestTranscriptJson:
    def test_roundtrips_through_json(self):
        t = Transcript()
        with t.section("psi"):
            t.send(ALICE, 10, "seeds")
            t.send(BOB, 20, "hints")
        blob = json.dumps(t.to_json())
        data = json.loads(blob)
        assert data["total_bytes"] == 30
        assert data["bytes_from"]["alice"] == 10
        assert data["by_section"] == {"psi": 30}
