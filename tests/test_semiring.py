"""Unit tests for the annotation semirings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relalg.semiring import BooleanSemiring, IntegerRing


class TestIntegerRing:
    def test_identities(self):
        r = IntegerRing(32)
        assert r.add(0, 5) == 5
        assert r.mul(1, 5) == 5
        assert r.zero == 0 and r.one == 1

    def test_wraparound(self):
        r = IntegerRing(8)
        assert r.add(200, 100) == (300) % 256
        assert r.mul(16, 16) == 0
        assert r.neg(1) == 255

    def test_modulus_and_bits(self):
        assert IntegerRing(32).modulus == 2**32
        assert IntegerRing(32).bit_length == 32

    @pytest.mark.parametrize("ell", [0, 64, 100, -3])
    def test_rejects_bad_bit_length(self, ell):
        with pytest.raises(ValueError):
            IntegerRing(ell)

    @given(
        a=st.integers(0, 2**16 - 1),
        b=st.integers(0, 2**16 - 1),
        c=st.integers(0, 2**16 - 1),
    )
    def test_ring_axioms(self, a, b, c):
        r = IntegerRing(16)
        assert r.add(a, b) == r.add(b, a)
        assert r.mul(a, b) == r.mul(b, a)
        assert r.mul(a, r.add(b, c)) == r.add(r.mul(a, b), r.mul(a, c))
        assert r.add(a, r.neg(a)) == 0

    def test_vectorised_matches_scalar(self):
        r = IntegerRing(16)
        a = np.asarray([1, 70000, 65535], dtype=np.uint64) % r.modulus
        b = np.asarray([5, 9, 1], dtype=np.uint64)
        assert list(r.add_vec(a, b)) == [r.add(int(x), int(y)) for x, y in zip(a, b)]
        assert list(r.mul_vec(a, b)) == [r.mul(int(x), int(y)) for x, y in zip(a, b)]

    def test_sum_and_product(self):
        r = IntegerRing(8)
        assert r.sum([100, 100, 100]) == 44
        assert r.product([3, 5, 7]) == 105

    def test_equality_and_hash(self):
        assert IntegerRing(32) == IntegerRing(32)
        assert IntegerRing(32) != IntegerRing(16)
        assert hash(IntegerRing(8)) == hash(IntegerRing(8))
        assert IntegerRing(1) != BooleanSemiring()


class TestBooleanSemiring:
    def test_truth_table(self):
        b = BooleanSemiring()
        assert b.add(0, 0) == 0 and b.add(0, 1) == 1 and b.add(1, 1) == 1
        assert b.mul(1, 1) == 1 and b.mul(1, 0) == 0 and b.mul(0, 0) == 0

    def test_normalize(self):
        assert BooleanSemiring().normalize(17) == 1
        assert BooleanSemiring().normalize(0) == 0

    def test_vectorised(self):
        b = BooleanSemiring()
        x = np.asarray([0, 2, 0, 1], dtype=np.uint64)
        y = np.asarray([1, 0, 0, 1], dtype=np.uint64)
        assert list(b.add_vec(x, y)) == [1, 1, 0, 1]
        assert list(b.mul_vec(x, y)) == [0, 0, 0, 1]
