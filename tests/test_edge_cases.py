"""Empty and degenerate inputs across the stack."""

from functools import partial

import numpy as np
import pytest

from repro.core import SecureRelation, secure_yannakakis
from repro.core.composition import divide_compose
from repro.core.join import ObliviousJoinResult
from repro.mpc import ALICE, BOB, Context, Mode
from repro.mpc.oep import (
    oblivious_extended_permutation,
    oblivious_permutation,
)
from repro.mpc.ot import make_ot
from repro.mpc.sharing import SharedVector, share_vector
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import build_plan

from .conftest import TEST_GROUP_BITS, make_engine

RING = IntegerRing(32)


mk_engine = partial(make_engine, seed=1)


class TestEmptyVectors:
    def test_empty_permutation(self):
        ctx = Context(Mode.SIMULATED, seed=1)
        ot = make_ot(ctx, TEST_GROUP_BITS)
        sv = SharedVector.zeros(0, ctx.modulus)
        out = oblivious_permutation(ctx, ot, [], sv)
        assert len(out) == 0

    def test_empty_oep_output(self):
        ctx = Context(Mode.SIMULATED, seed=1)
        ot = make_ot(ctx, TEST_GROUP_BITS)
        sv = share_vector(ctx, ALICE, [1, 2, 3])
        out = oblivious_extended_permutation(ctx, ot, [], sv, 0)
        assert len(out) == 0

    def test_engine_empty_ops(self):
        eng = mk_engine()
        z = eng.zeros(0)
        assert len(eng.mul_shared(z, z)) == 0
        assert len(eng.indicator_nonzero(z)) == 0
        assert len(eng.divide_reveal(z, z)) == 0
        flags, _ = eng.reveal_nonzero_flags(z)
        assert len(flags) == 0

    def test_share_empty(self):
        eng = mk_engine()
        sv = eng.share(BOB, [])
        assert len(sv) == 0 and len(sv.reconstruct()) == 0


class TestEmptyRelations:
    def test_protocol_with_one_empty_relation(self):
        r1 = AnnotatedRelation(("a", "b"), [(1, 2)], [5], RING)
        r2 = AnnotatedRelation(("b",), [], None, RING)
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b",)})
        plan = build_plan(find_free_connex_tree(h, {"a"}), ("a",))
        eng = mk_engine()
        sec = {
            "R1": SecureRelation.from_annotated(ALICE, r1),
            "R2": SecureRelation.from_annotated(BOB, r2),
        }
        result, _ = secure_yannakakis(eng, sec, plan)
        assert len(result) == 0

    def test_protocol_all_annotations_zero(self):
        r1 = AnnotatedRelation(("a",), [(1,), (2,)], [0, 0], RING)
        h = Hypergraph({"R1": ("a",)})
        plan = build_plan(find_free_connex_tree(h, {"a"}), ("a",))
        eng = mk_engine()
        sec = {"R1": SecureRelation.from_annotated(ALICE, r1)}
        result, _ = secure_yannakakis(eng, sec, plan)
        assert len(result) == 0

    def test_single_tuple_single_relation(self):
        r1 = AnnotatedRelation(("a",), [(42,)], [7], RING)
        h = Hypergraph({"R1": ("a",)})
        plan = build_plan(find_free_connex_tree(h, {"a"}), ("a",))
        eng = mk_engine()
        sec = {"R1": SecureRelation.from_annotated(BOB, r1)}
        result, _ = secure_yannakakis(eng, sec, plan)
        assert result.to_dict() == {(42,): 7}


class TestDegenerateComposition:
    def test_divide_with_empty_denominator(self):
        eng = mk_engine()
        num = ObliviousJoinResult(("g",), [(1,)], eng.share(BOB, [4]))
        den = ObliviousJoinResult(
            ("g",), [], SharedVector.zeros(0, eng.ctx.modulus)
        )
        out = divide_compose(eng, num, den)
        assert len(out) == 0

    def test_extreme_annotation_values(self):
        # annotations at the ring boundary survive the whole pipeline
        big = RING.modulus - 1
        r1 = AnnotatedRelation(("a",), [(1,)], [big], RING)
        r2 = AnnotatedRelation(("a",), [(1,)], [1], RING)
        h = Hypergraph({"R1": ("a",), "R2": ("a",)})
        plan = build_plan(find_free_connex_tree(h, {"a"}), ("a",))
        eng = mk_engine()
        sec = {
            "R1": SecureRelation.from_annotated(ALICE, r1),
            "R2": SecureRelation.from_annotated(BOB, r2),
        }
        result, _ = secure_yannakakis(eng, sec, plan)
        assert result.to_dict() == {(1,): big}
