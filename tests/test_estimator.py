"""The analytic cost estimator against the metered execution."""

import numpy as np
import pytest

from repro.bench.estimator import estimate_plan_cost
from repro.core import SecureRelation, secure_yannakakis
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import build_plan

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


def run_and_estimate(owners, n1, n2, output=("b",), seed=0):
    rng = np.random.default_rng(seed)
    r1 = AnnotatedRelation(
        ("a", "b"),
        [(int(x), int(y)) for x, y in rng.integers(0, 50, (n1, 2))],
        rng.integers(1, 9, n1),
        RING,
    )
    r2 = AnnotatedRelation(
        ("b", "c"),
        [(int(x), int(y)) for x, y in rng.integers(0, 50, (n2, 2))],
        rng.integers(1, 9, n2),
        RING,
    )
    rels = {"R1": r1, "R2": r2}
    h = Hypergraph({n: r.attributes for n, r in rels.items()})
    plan = build_plan(find_free_connex_tree(h, set(output)), output)
    engine = Engine(Context(Mode.SIMULATED, seed=1), TEST_GROUP_BITS)
    sec = {
        n: SecureRelation.from_annotated(owners[n], rels[n]) for n in rels
    }
    result, stats = secure_yannakakis(engine, sec, plan)
    est = estimate_plan_cost(
        plan,
        {"R1": n1, "R2": n2},
        owners,
        out_size=len(result),
        group_bits=TEST_GROUP_BITS,
    )
    return stats.total_bytes, est


class TestAccuracy:
    @pytest.mark.parametrize("n1,n2", [(10, 10), (40, 25), (7, 60)])
    def test_cross_party_exact(self, n1, n2):
        actual, est = run_and_estimate(
            {"R1": ALICE, "R2": BOB}, n1, n2, seed=n1
        )
        assert est.total == actual

    def test_reverse_ownership_exact(self):
        actual, est = run_and_estimate({"R1": BOB, "R2": ALICE}, 30, 20)
        assert est.total == actual

    def test_same_party_within_one_percent(self):
        actual, est = run_and_estimate({"R1": ALICE, "R2": ALICE}, 40, 25)
        assert abs(est.total - actual) <= 0.01 * actual

    def test_semijoin_phase_estimated(self):
        # Output on both ends forces the semijoin/full-join phases.
        actual, est = run_and_estimate(
            {"R1": ALICE, "R2": BOB}, 20, 20, output=("a", "b", "c")
        )
        assert abs(est.total - actual) <= 0.02 * actual


class TestBreakdown:
    def test_parts_sum_to_total(self):
        _, est = run_and_estimate({"R1": ALICE, "R2": BOB}, 15, 15)
        assert sum(est.by_part.values()) == est.total

    def test_gc_tables_present_for_cross_party(self):
        _, est = run_and_estimate({"R1": ALICE, "R2": BOB}, 15, 15)
        assert est.by_part.get("gc_tables", 0) > 0
        assert est.by_part.get("oprf", 0) > 0

    def test_estimate_scales_linearly(self):
        _, small = run_and_estimate({"R1": ALICE, "R2": BOB}, 20, 20)
        _, big = run_and_estimate({"R1": ALICE, "R2": BOB}, 80, 80)
        ratio = big.total / small.total
        assert 2.5 < ratio < 6  # ~4x data, ~linear cost
