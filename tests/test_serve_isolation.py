"""The tenant-isolation battery.

The serving layer's hard guarantee, stated in ``docs/SERVING.md``: a
crashed or faulted session leaves every other tenant's transcript
**byte-identical** to its solo run.  These tests prove it:

* dual-session chaos sweeps — every message-fault kind at strided wire
  indices in session A, plus a party crash at every plan node — assert
  session B's :class:`~repro.runtime.chaos.RunProfile` (rows, bytes,
  rounds, full transcript fingerprint) equals its solo baseline at
  every point, under both interleave policies (full-stride sweeps run
  in the nightly ``repro serve --isolation-sweep`` job);
* arbitrary worker crashes (not just protocol aborts) are contained;
* a sampled sweep in REAL mode (actual OT/garbling/OPRF bytes);
* the acceptance run: all five TPC-H queries served concurrently match
  their solo fingerprints exactly.

Runtime note: tier-1 keeps each sweep to a few dozen points via
``stride``; nightly runs stride 1.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import GeneratorConfig, generate_instance
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.serve import (
    DONE,
    FAILED,
    QueryRequest,
    QueryService,
    isolation_sweep,
    run_solo,
    run_workload,
    tpch_request,
)

from .conftest import TEST_GROUP_BITS

pytestmark = pytest.mark.serve

SMALL = GeneratorConfig(max_relations=3, max_tuples=4)
#: Minimal instances for REAL mode (sub-second per run).
TINY = GeneratorConfig(
    min_relations=2,
    max_relations=2,
    max_arity=2,
    max_private_attrs=1,
    max_tuples=3,
)


def factory(master_seed, tenant, name, mode=None, config=SMALL):
    """A RequestFactory over one fuzz instance (fresh query per call:
    relations are re-wrapped per run)."""
    inst = generate_instance(master_seed, 0, config)

    def make(faults):
        kwargs = {}
        if mode is not None:
            kwargs["mode"] = mode
        return QueryRequest(
            tenant=tenant,
            name=name,
            query=inst.query(),
            seed=5,
            group_bits=TEST_GROUP_BITS,
            faults=faults,
            **kwargs,
        )

    return make


class TestDualSessionSweep:
    @pytest.mark.parametrize("interleave", ["round_robin", "clock"])
    def test_faults_in_a_never_touch_b(self, interleave):
        report = isolation_sweep(
            factory(101, "a", "victim"),
            factory(202, "b", "observer"),
            interleave=interleave,
            stride=7,
        )
        assert report.outcomes, "sweep produced no fault points"
        drifts = [str(o) for o in report.drifts]
        assert report.ok, f"{report.summary()}\n" + "\n".join(
            str(o) for o in report.violations
        )
        assert drifts == []

    def test_crashes_at_every_node_contained(self):
        """Party crashes (node-scoped, the harshest fault) only."""
        report = isolation_sweep(
            factory(101, "a", "victim"),
            factory(202, "b", "observer"),
            kinds=("crash",),
        )
        # every plan node of the victim was crashed at least once
        assert len(report.outcomes) == report.baseline_nodes
        assert report.ok, report.summary()

    @pytest.mark.real
    def test_sampled_sweep_real_mode(self):
        """Sampled fault points with actual cryptography on the wire."""
        from repro.mpc import Mode

        report = isolation_sweep(
            factory(8, "a", "victim", mode=Mode.REAL, config=TINY),
            factory(7, "b", "observer", mode=Mode.REAL, config=TINY),
            kinds=("corrupt", "drop"),
            stride=5,
        )
        assert report.outcomes
        assert report.ok, report.summary()


class TestCrashContainment:
    def test_arbitrary_worker_crash_is_contained(self):
        """A non-protocol exception in one session's worker (a bug, not
        an injected fault) must not perturb the other session."""

        def exploding(engine):
            raise RuntimeError("tenant bug")

        baseline = run_solo(
            QueryRequest(
                tenant="b",
                name="observer",
                query=generate_instance(202, 0, SMALL).query(),
                seed=5,
            )
        )
        assert baseline.state == DONE

        svc = QueryService()
        svc.submit(
            QueryRequest(tenant="a", name="boom", run=exploding, ell=32)
        )
        svc.submit(
            QueryRequest(
                tenant="b",
                name="observer",
                query=generate_instance(202, 0, SMALL).query(),
                seed=5,
            )
        )
        report = svc.run()
        crashed, observer = svc.sessions
        assert crashed.state == FAILED
        assert isinstance(crashed.error, RuntimeError)
        assert observer.state == DONE
        assert observer.profile.diff(baseline.profile) == ""
        assert report.counts == {"done": 1, "failed": 1}

    def test_victim_crash_mid_protocol(self):
        """A peer crash partway through the victim's plan: the victim
        fails cleanly, the observer stays byte-identical."""
        victim_solo = run_solo(factory(101, "a", "victim")(None))
        observer_solo = run_solo(factory(202, "b", "observer")(None))
        # crash at a node past the first (mid-protocol, unretryable)
        node = victim_solo.profile.nodes_seen[2]
        svc = QueryService()
        svc.submit(
            factory(101, "a", "victim")(
                FaultPlan([FaultSpec("crash", node=node, party="alice")])
            )
        )
        svc.submit(factory(202, "b", "observer")(None))
        svc.run()
        victim, observer = svc.sessions
        assert victim.state == FAILED
        assert observer.state == DONE
        assert observer.profile.diff(observer_solo.profile) == ""


class TestAcceptanceTpch:
    """The headline acceptance run: a concurrent-session run of all
    five TPC-H queries matches solo-run fingerprints exactly."""

    def test_all_five_queries_concurrent_match_solo(self):
        requests = [
            tpch_request(q, tenant=f"tenant{i % 2}", scale_mb=0.1)
            for i, q in enumerate(("Q3", "Q10", "Q18", "Q8", "Q9"))
        ]
        result = run_workload(
            requests, interleave="clock", check_solo=True
        )
        assert [s.state for s in result.sessions] == [DONE] * 5
        assert result.solo_deltas == {
            "Q3": "",
            "Q10": "",
            "Q18": "",
            "Q8": "",
            "Q9": "",
        }
        assert result.isolated

    def test_two_tenants_round_robin_with_budgets(self):
        """Budgeted two-tenant smoke (the CI gate): byte-exact vs solo
        with admission accounting active."""
        requests = [
            tpch_request("Q3", tenant="t0", scale_mb=0.1),
            tpch_request("Q3", tenant="t1", scale_mb=0.1, name="Q3b"),
        ]
        result = run_workload(
            requests,
            interleave="round_robin",
            budgets={"t0": (1 << 30, 1 << 30), "t1": (1 << 30, 1 << 30)},
            check_solo=True,
        )
        assert result.isolated, result.solo_deltas
        snap = result.report.admission
        assert snap["t0"]["bytes_spent"] > 0
        assert snap["t1"]["bytes_spent"] > 0
