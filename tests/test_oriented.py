"""The role-orienting engine facade."""

from functools import partial

import numpy as np
import pytest

from repro.core.oriented import OrientedEngine
from repro.mpc import ALICE, BOB

from .conftest import make_engine


mk_engine = partial(make_engine, seed=8)


class TestOrientation:
    def test_rejects_unknown_party(self):
        with pytest.raises(ValueError):
            OrientedEngine(mk_engine(), "carol")

    def test_flipped(self):
        eng = mk_engine()
        oe = OrientedEngine(eng, BOB)
        assert oe.flipped().owner == ALICE
        assert oe.flipped().flipped().owner == BOB

    @pytest.mark.parametrize("owner", [ALICE, BOB])
    def test_mul_semantics_owner_independent(self, owner):
        eng = mk_engine()
        oe = OrientedEngine(eng, owner)
        x = eng.share(ALICE, [3, 4])
        y = eng.share(BOB, [5, 6])
        z = oe.mul_shared(x, y)
        assert list(z.reconstruct()) == [15, 24]

    @pytest.mark.parametrize("owner", [ALICE, BOB])
    def test_owner_plain_mul(self, owner):
        eng = mk_engine()
        oe = OrientedEngine(eng, owner)
        y = eng.share(ALICE, [10, 20])
        z = oe.mul_owner_plain(np.asarray([2, 3]), y)
        assert list(z.reconstruct()) == [20, 60]

    @pytest.mark.parametrize("owner", [ALICE, BOB])
    def test_oep_owner_independent(self, owner):
        eng = mk_engine()
        oe = OrientedEngine(eng, owner)
        v = eng.share(BOB, [10, 20, 30])
        out = oe.oep([2, 2, 0, 1], v, 4)
        assert list(out.reconstruct()) == [30, 30, 10, 20]

    @pytest.mark.parametrize("owner", [ALICE, BOB])
    def test_merge_chain_owner_independent(self, owner):
        eng = mk_engine()
        oe = OrientedEngine(eng, owner)
        v = eng.share(ALICE, [1, 2, 3])
        out = oe.merge_aggregate_sum([True, False], v)
        assert list(out.reconstruct()) == [0, 3, 3]

    def test_sender_labels_mirrored(self):
        """The same protocol run by the opposite owner produces the
        mirror-image transcript (senders swapped, sizes identical)."""

        def run(owner):
            eng = mk_engine(seed=5)
            oe = OrientedEngine(eng, owner)
            x = eng.share(ALICE, [3] * 4, label="in")
            y = eng.share(BOB, [5] * 4, label="in")
            start = len(eng.ctx.transcript.messages)
            oe.mul_shared(x, y)
            return eng.ctx.transcript.messages[start:]

        m_alice = run(ALICE)
        m_bob = run(BOB)
        assert [m.n_bytes for m in m_alice] == [m.n_bytes for m in m_bob]
        assert [m.sender for m in m_alice] == [
            {"alice": "bob", "bob": "alice"}[m.sender] for m in m_bob
        ]

    @pytest.mark.parametrize("owner", [ALICE, BOB])
    def test_psi_oriented(self, owner):
        eng = mk_engine()
        oe = OrientedEngine(eng, owner)
        res = oe.psi([1, 2, 3], [2, 9], [70, 80])
        ind = res.ind.reconstruct()
        pay = res.payload.reconstruct()
        bins = res.bin_of_item_index()
        assert ind[bins[1]] == 1 and pay[bins[1]] == 70
        assert ind[bins[0]] == 0 and ind[bins[2]] == 0
