"""Arithmetic secret sharing over Z_{2^ell}."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import ALICE, BOB, Context, Mode, SharedVector
from repro.mpc.sharing import reveal_vector, share_vector


@pytest.fixture
def ctx():
    return Context(Mode.SIMULATED, seed=5)


class TestShareReveal:
    def test_roundtrip(self, ctx):
        vals = np.asarray([0, 1, 2**31, 2**32 - 1], dtype=np.uint64)
        sv = share_vector(ctx, ALICE, vals)
        assert (sv.reconstruct() == vals).all()

    def test_sharing_charges_bytes(self, ctx):
        share_vector(ctx, BOB, [1, 2, 3])
        assert ctx.transcript.total_bytes == 3 * 4  # ell = 32

    def test_reveal_charges_other_party(self, ctx):
        sv = share_vector(ctx, ALICE, [7])
        before = ctx.transcript.bytes_from(BOB)
        out = reveal_vector(ctx, sv, ALICE)
        assert out[0] == 7
        assert ctx.transcript.bytes_from(BOB) == before + 4

    def test_shares_are_not_plaintext(self, ctx):
        vals = np.zeros(64, dtype=np.uint64)
        sv = share_vector(ctx, ALICE, vals)
        # With overwhelming probability a 64-element share vector of
        # zeros is not itself all zeros.
        assert sv.alice.any() or sv.bob.any()

    def test_negative_values_wrap(self, ctx):
        sv = share_vector(ctx, ALICE, np.asarray([-1], dtype=np.int64))
        assert sv.reconstruct()[0] == ctx.modulus - 1

    def test_float_input_rejected(self, ctx):
        with pytest.raises(TypeError):
            share_vector(ctx, ALICE, np.asarray([1.5]))


class TestLocalOps:
    @given(
        xs=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
        ys=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
    )
    def test_add_sub_neg(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        ctx = Context(Mode.SIMULATED, seed=6)
        a = share_vector(ctx, ALICE, xs)
        b = share_vector(ctx, BOB, ys)
        mod = ctx.modulus
        assert list((a + b).reconstruct()) == [(x + y) % mod for x, y in zip(xs, ys)]
        assert list((a - b).reconstruct()) == [(x - y) % mod for x, y in zip(xs, ys)]
        assert list((-a).reconstruct()) == [(-x) % mod for x in xs]

    def test_mul_public_and_add_public(self, ctx):
        sv = share_vector(ctx, ALICE, [3, 4])
        assert list(sv.mul_public([10, 100]).reconstruct()) == [30, 400]
        assert list(sv.add_public([1, 2]).reconstruct()) == [4, 6]
        assert list(sv.add_public([1, 2], holder=BOB).reconstruct()) == [4, 6]

    def test_sum(self, ctx):
        sv = share_vector(ctx, BOB, [1, 2, 3, 4])
        assert sv.sum().reconstruct()[0] == 10

    def test_take_concat_zeros(self, ctx):
        sv = share_vector(ctx, ALICE, [10, 20, 30])
        taken = sv.take([2, 0])
        assert list(taken.reconstruct()) == [30, 10]
        z = SharedVector.zeros(2, ctx.modulus)
        assert list(sv.concat(z).reconstruct()) == [10, 20, 30, 0, 0]

    def test_swapped_reconstructs_identically(self, ctx):
        sv = share_vector(ctx, ALICE, [5, 6])
        assert list(sv.swapped().reconstruct()) == [5, 6]
        assert (sv.swapped().alice == sv.bob).all()

    def test_shape_mismatch_rejected(self, ctx):
        with pytest.raises(ValueError):
            SharedVector(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64), ctx.modulus)

    def test_ring_mismatch_rejected(self, ctx):
        a = SharedVector.zeros(1, 2**32)
        b = SharedVector.zeros(1, 2**16)
        with pytest.raises(ValueError):
            a + b
