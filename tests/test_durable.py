"""Disk-durable checkpoints: journal integrity and resume equality.

The acceptance bar (docs/ROBUSTNESS.md): a journal round-trip must
reproduce the in-memory checkpoint exactly, and resuming Q3 from
*every* plan node's committed checkpoint must yield a transcript
fingerprint and result byte-identical to the unfaulted run.
"""

import json
import os
import pickle

import pytest

from repro.exec import Scheduler
from repro.mpc.context import Mode
from repro.mpc.engine import Engine
from repro.runtime import (
    DurableStore,
    FaultPlan,
    FaultSpec,
    Journal,
    NetConfig,
    PeerCrash,
    RetryPolicy,
    enable_session,
    profile_run,
    revive,
    run_party,
    solo_profile,
)
from repro.runtime.durable import KIND_CHECKPOINT, KIND_DONE, KIND_META
from repro.runtime.netrun import _compiled, _prepared, _reveal


class TestJournal:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "j.syj")
        records = [
            (KIND_META, b'{"query": "Q3"}'),
            (KIND_CHECKPOINT, os.urandom(1000)),
            (KIND_CHECKPOINT, b""),
            (KIND_DONE, b"{}"),
        ]
        with Journal(path, truncate=True) as j:
            for kind, payload in records:
                j.append(kind, payload)
        assert list(Journal.scan(path)) == records

    def test_scan_stops_at_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.syj")
        with Journal(path, truncate=True) as j:
            j.append(KIND_META, b"{}")
            j.append(KIND_CHECKPOINT, b"x" * 500)
        size = os.path.getsize(path)
        # Tear the last record: every truncation point inside it must
        # recover the committed prefix, never raise.
        for cut in (size - 1, size - 250, size - 500, size - 520):
            with open(path, "r+b") as fh:
                fh.truncate(cut)
            assert list(Journal.scan(path)) == [(KIND_META, b"{}")]
            # restore for the next iteration
            with Journal(path, truncate=True) as j:
                j.append(KIND_META, b"{}")
                j.append(KIND_CHECKPOINT, b"x" * 500)

    def test_scan_stops_at_corrupt_payload(self, tmp_path):
        path = str(tmp_path / "j.syj")
        with Journal(path, truncate=True) as j:
            j.append(KIND_META, b"{}")
            j.append(KIND_CHECKPOINT, b"y" * 100)
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        assert list(Journal.scan(path)) == [(KIND_META, b"{}")]

    def test_append_after_close_rejected(self, tmp_path):
        path = str(tmp_path / "j.syj")
        j = Journal(path, truncate=True)
        j.close()
        with pytest.raises(ValueError):
            j.append(KIND_META, b"{}")

    def test_unknown_kind_rejected(self, tmp_path):
        with Journal(str(tmp_path / "j.syj"), truncate=True) as j:
            with pytest.raises(ValueError):
                j.append(99, b"")


class TestDurableStore:
    def test_load_requires_leading_meta(self, tmp_path):
        path = str(tmp_path / "j.syj")
        with Journal(path, truncate=True) as j:
            j.append(KIND_CHECKPOINT, pickle.dumps(None))
        with pytest.raises(ValueError):
            DurableStore.load(path)

    def test_resume_counts_meta_records(self, tmp_path):
        path = str(tmp_path / "j.syj")
        store = DurableStore.create(path, {"session_id": "abc"})
        store.close()
        again = DurableStore.append_to(path)
        again.journal.append(KIND_META, json.dumps({"x": 1}).encode())
        again.save_done({"status": "done"})
        again.close()
        state = DurableStore.load(path)
        assert state.meta["session_id"] == "abc"
        assert state.meta["resumes"] == 1
        assert state.done == {"status": "done"}


# -- end-to-end durability over Q3 -------------------------------------

CONFIG_KW = dict(query="Q3", scale_mb=0.1, seed=7)


@pytest.fixture(scope="module")
def q3_baseline():
    return solo_profile(NetConfig(role="alice", **CONFIG_KW))


@pytest.fixture(scope="module")
def q3_journal(tmp_path_factory):
    """One unfaulted journaled Q3 run; returns its journal path."""
    path = str(tmp_path_factory.mktemp("durable") / "q3.syj")
    config = NetConfig(role="alice", journal=path, **CONFIG_KW)
    outcome = run_party(config)
    assert outcome["status"] == "done"
    assert outcome["checkpoints_committed"] > 0
    return path


class TestResume:
    def test_journal_round_trip_reproduces_checkpoint(self, q3_journal):
        """Serialise -> fsync -> load -> revive reproduces the captured
        state exactly: counters, transcript prefix, step id."""
        state = DurableStore.load(q3_journal)
        for step_id, blob in state.checkpoints:
            live = pickle.loads(blob)
            engine, session, env, revived = revive(blob)
            assert revived.step_id == step_id == live.step_id
            assert session is engine.ctx.session
            # The revived session counters equal the captured ones.
            assert session._seq == live._session_state.seq
            assert session._expected == live._session_state.expected
            # The transcript prefix was cut back to the capture point.
            assert (
                len(engine.ctx.transcript.messages)
                == live._transcript_state.n_messages
            )

    def test_resume_from_every_node_matches_baseline(
        self, q3_journal, q3_baseline
    ):
        """The tentpole equality: from every committed checkpoint, a
        revived run completes with a byte-identical transcript."""
        state = DurableStore.load(q3_journal)
        config = NetConfig(role="alice", **CONFIG_KW)
        assert len(state.checkpoints) == len(q3_baseline.nodes_seen)
        for step_id, blob in state.checkpoints:
            engine, session, env, _ = revive(blob)
            prepared = _prepared(config)
            plan, exec_plan, inputs = _compiled(
                prepared._build(), engine
            )
            env = Scheduler(engine).run(
                exec_plan, inputs, env=env, start_at=step_id
            )
            result = _reveal(engine.ctx, plan, env)
            session.finish()
            profile = profile_run(engine.ctx, session, result)
            assert profile.diff(q3_baseline) == "", (
                f"resume from node {step_id} diverged: "
                f"{profile.diff(q3_baseline)}"
            )

    def test_crashed_run_resumes_via_run_party(
        self, tmp_path, q3_baseline
    ):
        """The CLI-facing flow: a run that dies mid-plan (in-session
        crash fault, terminal under net-mode max_attempts=1) leaves a
        journal that ``--resume`` completes to baseline equality."""
        path = str(tmp_path / "crash.syj")
        config = NetConfig(role="alice", journal=path, **CONFIG_KW)
        crash_node = q3_baseline.nodes_seen[4]

        prepared = _prepared(config)
        ctx = prepared.make_context(Mode.SIMULATED, seed=config.seed)
        engine = Engine(
            ctx, config.group_bits, exec_policy=config.policy
        )
        engine.backend = config.backend
        from repro.mpc.transcript import BOB

        session = enable_session(
            ctx,
            FaultPlan([FaultSpec("crash", node=crash_node, party=BOB)]),
            node_budget=config.node_budget,
            seed=config.seed,
        )
        session.retry_policy = RetryPolicy(max_attempts=1)
        store = DurableStore.create(path, config.meta())
        session.durable = store
        plan, exec_plan, inputs = _compiled(prepared._build(), engine)
        with pytest.raises(PeerCrash):
            Scheduler(engine).run(exec_plan, inputs)
        store.close()

        resumed = run_party(
            NetConfig(role="alice", journal=path, resume=True, **CONFIG_KW)
        )
        assert resumed["status"] == "done"
        assert resumed["resumed_from"] == crash_node
        from repro.runtime.netrun import profile_from_json

        profile = profile_from_json(resumed["profile"])
        assert profile.diff(q3_baseline) == ""

    def test_done_journal_resume_is_idempotent(self, q3_journal):
        outcome = run_party(
            NetConfig(
                role="alice", journal=q3_journal, resume=True, **CONFIG_KW
            )
        )
        assert outcome["already_done"] is True
        assert outcome["status"] == "done"

    def test_session_id_mismatch_rejected(self, tmp_path):
        # A journal written under one configuration must refuse to
        # resume a differently-configured run (no DONE record, so the
        # idempotence shortcut does not mask the check).
        path = str(tmp_path / "other.syj")
        other = NetConfig(role="alice", query="Q3", scale_mb=0.1, seed=99)
        DurableStore.create(path, other.meta()).close()
        with pytest.raises(ValueError) as err:
            run_party(
                NetConfig(
                    role="alice", journal=path, resume=True, **CONFIG_KW
                )
            )
        assert "different run configuration" in str(err.value)
