"""Garbled circuits: garbled evaluation must match plaintext evaluation,
and the scheme's structural security properties must hold."""

import secrets

import numpy as np
import pytest

from repro.mpc.circuits import CircuitBuilder, evaluate_garbled, garble
from repro.mpc.gadgets import bits_of, int_of


def random_circuit(rng, n_alice=6, n_bob=6, n_gates=40):
    b = CircuitBuilder()
    wires = b.alice_input_bits(n_alice) + b.bob_input_bits(n_bob)
    wires.append(b.constant(0))
    wires.append(b.constant(1))
    for _ in range(n_gates):
        op = rng.integers(0, 3)
        a = wires[rng.integers(0, len(wires))]
        c = wires[rng.integers(0, len(wires))]
        if op == 0:
            wires.append(b.xor(a, c))
        elif op == 1:
            wires.append(b.and_(a, c))
        else:
            wires.append(b.not_(a))
    outputs = [wires[i] for i in rng.integers(0, len(wires), size=8)]
    return b.build(outputs)


def garbled_eval(circuit, alice_bits, bob_bits):
    g = garble(circuit, secrets.token_bytes)
    labels = {}
    for w, bit in zip(circuit.alice_inputs, alice_bits):
        labels[w] = g.label(w, bit)
    for w, bit in zip(circuit.bob_inputs, bob_bits):
        labels[w] = g.label(w, bit)
    for w, bit in circuit.const_wires:
        labels[w] = g.label(w, bit)
    active = evaluate_garbled(circuit, g.tables, labels)
    permute = g.output_permute_bits()
    return [
        (active[w] & 1) ^ p for w, p in zip(circuit.outputs, permute)
    ]


class TestCorrectness:
    def test_random_circuits(self):
        rng = np.random.default_rng(13)
        for _ in range(25):
            c = random_circuit(rng)
            alice = list(rng.integers(0, 2, len(c.alice_inputs)))
            bob = list(rng.integers(0, 2, len(c.bob_inputs)))
            assert garbled_eval(c, alice, bob) == c.evaluate(alice, bob)

    def test_arithmetic_circuit(self):
        ell = 8
        b = CircuitBuilder()
        xs, ys = b.alice_input_bits(ell), b.bob_input_bits(ell)
        c = b.build(b.mul(xs, ys))
        out = garbled_eval(c, bits_of(13, ell), bits_of(19, ell))
        assert int_of(out) == (13 * 19) % 256

    def test_all_gate_types(self):
        b = CircuitBuilder()
        (x,) = b.alice_input_bits(1)
        (y,) = b.bob_input_bits(1)
        outs = [b.xor(x, y), b.and_(x, y), b.not_(x), b.or_(x, y)]
        c = b.build(outs)
        for xv in (0, 1):
            for yv in (0, 1):
                assert garbled_eval(c, [xv], [yv]) == c.evaluate([xv], [yv])


class TestSchemeStructure:
    def test_free_xor_produces_no_tables(self):
        b = CircuitBuilder()
        (x,) = b.alice_input_bits(1)
        (y,) = b.bob_input_bits(1)
        b.xor(x, y)
        c = b.build([])
        g = garble(c, secrets.token_bytes)
        assert g.tables.n_bytes == 0

    def test_table_bytes_two_rows_per_and(self):
        # Half-gates: exactly two 16-byte ciphertexts per AND gate.
        b = CircuitBuilder()
        xs, ys = b.alice_input_bits(8), b.bob_input_bits(8)
        b.add(xs, ys)
        c = b.build([])
        g = garble(c, secrets.token_bytes)
        assert g.tables.n_bytes == c.and_count * 2 * 16

    def test_labels_differ_by_global_delta(self):
        b = CircuitBuilder()
        xs = b.alice_input_bits(4)
        c = b.build(xs)
        g = garble(c, secrets.token_bytes)
        for w in c.alice_inputs:
            assert g.label(w, 0) ^ g.label(w, 1) == g.delta

    def test_delta_has_lsb_one(self):
        b = CircuitBuilder()
        b.alice_input_bits(1)
        g = garble(b.build([]), secrets.token_bytes)
        assert g.delta & 1 == 1

    def test_select_bits_of_pair_differ(self):
        # Point-and-permute needs the two labels of a wire to carry
        # opposite select bits.
        b = CircuitBuilder()
        xs = b.alice_input_bits(4)
        c = b.build(xs)
        g = garble(c, secrets.token_bytes)
        for w in c.alice_inputs:
            assert (g.label(w, 0) & 1) != (g.label(w, 1) & 1)

    def test_fresh_garblings_use_fresh_labels(self):
        b = CircuitBuilder()
        xs = b.alice_input_bits(2)
        c = b.build(xs)
        g1 = garble(c, secrets.token_bytes)
        g2 = garble(c, secrets.token_bytes)
        assert g1.zero_labels != g2.zero_labels
