"""Round complexity guarantees and failure-path injection.

The paper claims every operator runs in a constant number of rounds
(data-size-independent); this module pins that down per primitive, and
exercises the statistical-failure escape hatches.
"""

import numpy as np
import pytest

import repro.mpc.psi as psi_mod
from repro.mpc import Context, Engine, Mode
from repro.mpc.oep import oblivious_extended_permutation
from repro.mpc.ot import make_ot
from repro.mpc.psi import psi_with_payloads
from repro.mpc.sharing import share_vector


def rounds_of(fn, *sizes):
    out = []
    for n in sizes:
        ctx = Context(Mode.SIMULATED, seed=1)
        fn(ctx, n)
        out.append(ctx.transcript.rounds)
    return out


class TestConstantRounds:
    def test_psi_rounds_data_independent(self):
        def run(ctx, n):
            ot = make_ot(ctx)
            psi_with_payloads(
                ctx, ot,
                [("a", i) for i in range(n)],
                [("a", i) for i in range(n // 2, n + n // 2)],
                list(range(n)),
            )

        r = rounds_of(run, 8, 64, 256)
        assert len(set(r)) == 1, r

    def test_oep_rounds_data_independent(self):
        def run(ctx, n):
            ot = make_ot(ctx)
            sv = share_vector(ctx, "alice", list(range(n)))
            oblivious_extended_permutation(
                ctx, ot, list(np.arange(n)[::-1]), sv, n
            )

        r = rounds_of(run, 8, 64, 512)
        assert len(set(r)) == 1, r

    def test_engine_mul_rounds_data_independent(self):
        def run(ctx, n):
            eng = Engine(ctx)
            x = eng.share("alice", list(range(n)))
            y = eng.share("bob", list(range(n)))
            eng.mul_shared(x, y)

        r = rounds_of(run, 4, 128)
        assert len(set(r)) == 1, r

    def test_merge_chain_rounds_data_independent(self):
        def run(ctx, n):
            eng = Engine(ctx)
            v = eng.share("alice", list(range(n)))
            eng.merge_aggregate_sum([False] * (n - 1), v)

        r = rounds_of(run, 4, 256)
        assert len(set(r)) == 1, r


class TestFailureInjection:
    def test_bin_overflow_detected(self, monkeypatch):
        """If the statistical load bound were violated the protocol must
        abort rather than truncate silently."""
        monkeypatch.setattr(psi_mod, "max_bin_load", lambda *a, **k: 0)
        ctx = Context(Mode.SIMULATED, seed=2)
        ot = make_ot(ctx)
        with pytest.raises(RuntimeError, match="load bound"):
            psi_with_payloads(ctx, ot, [1, 2, 3], [1, 2], [5, 6])

    def test_cuckoo_exhaustion_surfaces(self):
        from repro.mpc.cuckoo import CuckooTable

        with pytest.raises(RuntimeError, match="cuckoo"):
            CuckooTable(list(range(20)), n_bins=5, max_rehashes=1)

    def test_engine_rejects_mismatched_lengths(self):
        eng = Engine(Context(Mode.SIMULATED, seed=3))
        x = eng.share("alice", [1, 2])
        y = eng.share("bob", [1, 2, 3])
        with pytest.raises(ValueError):
            eng.mul_shared(x, y)
        with pytest.raises(ValueError):
            eng.divide_reveal(x, y)

    def test_reveal_payload_width_validated(self):
        eng = Engine(Context(Mode.SIMULATED, seed=4))
        v = eng.share("bob", [1, 2])
        with pytest.raises(ValueError):
            eng.reveal_nonzero_flags(v, [[1, 0], [1]])
        with pytest.raises(ValueError):
            eng.reveal_nonzero_flags(v, [[1, 0]])

    def test_product_across_empty(self):
        eng = Engine(Context(Mode.SIMULATED, seed=5))
        with pytest.raises(ValueError):
            eng.product_across([])
