"""The Boolean circuit builder: every gadget against integer semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc.circuits import Circuit, CircuitBuilder
from repro.mpc.gadgets import bits_of, int_of


ELL = 12
WORD = st.integers(0, 2**ELL - 1)


def run2(gadget, x, y, ell=ELL):
    """Build a 2-word circuit, evaluate on (x, y) with x from Alice."""
    b = CircuitBuilder()
    xs = b.alice_input_bits(ell)
    ys = b.bob_input_bits(ell)
    out = gadget(b, xs, ys)
    circuit = b.build(out if isinstance(out, list) else [out])
    bits = circuit.evaluate(bits_of(x, ell), bits_of(y, ell))
    return int_of(bits)


class TestWordGadgets:
    @given(x=WORD, y=WORD)
    def test_add(self, x, y):
        assert run2(lambda b, xs, ys: b.add(xs, ys), x, y) == (x + y) % 2**ELL

    @given(x=WORD, y=WORD)
    def test_sub(self, x, y):
        assert run2(lambda b, xs, ys: b.sub(xs, ys), x, y) == (x - y) % 2**ELL

    @given(x=WORD, y=WORD)
    def test_mul(self, x, y):
        assert run2(lambda b, xs, ys: b.mul(xs, ys), x, y) == (x * y) % 2**ELL

    @given(x=WORD)
    def test_neg(self, x):
        assert run2(lambda b, xs, ys: b.neg(xs), x, 0) == (-x) % 2**ELL

    @given(x=WORD, y=WORD)
    def test_eq_and_comparisons(self, x, y):
        assert run2(lambda b, xs, ys: [b.eq(xs, ys)], x, y) == int(x == y)
        assert run2(lambda b, xs, ys: [b.lt_unsigned(xs, ys)], x, y) == int(x < y)
        assert run2(lambda b, xs, ys: [b.gt_unsigned(xs, ys)], x, y) == int(x > y)

    @given(x=WORD)
    def test_is_zero_nonzero(self, x):
        assert run2(lambda b, xs, ys: [b.is_zero(xs)], x, 0) == int(x == 0)
        assert run2(lambda b, xs, ys: [b.nonzero(xs)], x, 0) == int(x != 0)

    @given(x=WORD, y=WORD, sel=st.integers(0, 1))
    def test_mux(self, x, y, sel):
        def gadget(b, xs, ys):
            s = b.constant(sel)
            return b.mux(s, xs, ys)

        assert run2(gadget, x, y) == (x if sel else y)

    @given(x=WORD, y=WORD)
    def test_div(self, x, y):
        def quot(b, xs, ys):
            q, _ = b.div_unsigned(xs, ys)
            return q

        def rem(b, xs, ys):
            _, r = b.div_unsigned(xs, ys)
            return r

        if y == 0:
            assert run2(quot, x, y) == 2**ELL - 1
            assert run2(rem, x, y) == x
        else:
            assert run2(quot, x, y) == x // y
            assert run2(rem, x, y) == x % y


class TestStructure:
    def test_and_counts(self):
        ell = 16
        b = CircuitBuilder()
        xs, ys = b.alice_input_bits(ell), b.bob_input_bits(ell)
        b.add(xs, ys)
        c = b.build([])
        assert c.and_count == ell  # one AND per bit of a ripple adder

        b = CircuitBuilder()
        xs, ys = b.alice_input_bits(ell), b.bob_input_bits(ell)
        b.mul(xs, ys)
        assert b.build([]).and_count == ell * ell  # schoolbook multiplier

    def test_constants_cached(self):
        b = CircuitBuilder()
        w1, w2 = b.constant(1), b.constant(1)
        assert w1 == w2

    def test_or_via_one_and(self):
        b = CircuitBuilder()
        x = b.alice_input_bits(1)
        y = b.bob_input_bits(1)
        b.or_(x[0], y[0])
        c = b.build([])
        assert c.and_count == 1

    def test_word_length_mismatch(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.add(b.alice_input_bits(4), b.bob_input_bits(5))

    def test_evaluate_validates_input_counts(self):
        b = CircuitBuilder()
        xs = b.alice_input_bits(2)
        c = b.build(xs)
        with pytest.raises(ValueError):
            c.evaluate([1], [])
        with pytest.raises(ValueError):
            c.evaluate([1, 0], [1])

    def test_and_tree_of_empty_is_one(self):
        b = CircuitBuilder()
        w = b._and_tree([])
        c = b.build([w])
        assert c.evaluate([], []) == [1]

    def test_bits_roundtrip(self):
        for v in (0, 1, 5, 2**ELL - 1):
            assert int_of(bits_of(v, ELL)) == v
