"""The fixed-width tuple codec used by the oblivious join's reveal."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.codec import (
    AttrSpec,
    decode_tuple_bits,
    encode_tuple_bits,
    infer_specs,
    tuple_bits,
)
from repro.core.relation import dummy_tuple


class TestInferSpecs:
    def test_small_ints_use_four_bytes(self):
        specs = infer_specs([(1, 2), (3, 4)], 2)
        assert specs == [AttrSpec("int", 4), AttrSpec("int", 4)]

    def test_large_ints_widen(self):
        specs = infer_specs([(2**40,)], 1)
        assert specs[0].n_bytes == 8

    def test_strings_round_up(self):
        specs = infer_specs([("abcde",)], 1)
        assert specs[0] == AttrSpec("str", 8)

    def test_dummies_skipped(self):
        specs = infer_specs([dummy_tuple(1), (7,)], 1)
        assert specs[0].kind == "int"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            infer_specs([(1.5,)], 1)


class TestRoundtrip:
    @given(
        a=st.integers(-(2**31), 2**31 - 1),
        b=st.text(
            alphabet=st.characters(
                codec="utf-8", exclude_characters="\x00"
            ),
            max_size=12,
        ),
    )
    def test_int_str_roundtrip(self, a, b):
        t = (a, b)
        specs = infer_specs([t], 2)
        bits = encode_tuple_bits(t, specs)
        assert len(bits) == tuple_bits(specs)
        assert decode_tuple_bits(bits, specs) == t

    def test_negative_and_large(self):
        t = (-7, 2**40, "x")
        specs = infer_specs([t], 3)
        assert decode_tuple_bits(encode_tuple_bits(t, specs), specs) == t

    def test_dummy_encodes_to_zeros(self):
        specs = [AttrSpec("int", 4)]
        assert encode_tuple_bits(dummy_tuple(1), specs) == [0] * 32

    def test_fixed_width_is_value_independent(self):
        specs = infer_specs([(1, "abc"), (999999, "x")], 2)
        b1 = encode_tuple_bits((1, "abc"), specs)
        b2 = encode_tuple_bits((999999, "x"), specs)
        assert len(b1) == len(b2)

    def test_oversized_string_rejected(self):
        with pytest.raises(ValueError):
            encode_tuple_bits(("toolongstring",), [AttrSpec("str", 4)])

    def test_nul_in_string_rejected(self):
        with pytest.raises(ValueError):
            encode_tuple_bits(("a\x00b",), [AttrSpec("str", 8)])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_tuple_bits((1, 2), [AttrSpec("int", 4)])
