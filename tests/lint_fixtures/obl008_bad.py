"""OBL008 fixtures that MUST be flagged (linted as if under repro/mpc)."""

BACKENDS = ("yannakakis", "linear", "hybrid")

BACKEND_CONTRACTS = {
    "yannakakis": frozenset(),
    "linear": frozenset({"join_pattern:parent"}),
    "stale": frozenset({"opened:result"}),
}


@leaks("join_pattern:parent")  # noqa: F821 - fixture
def linear_impl(ctx, child, parent):
    return dh_oprf_match(ctx, parent, child, label="m")  # noqa: F821 - fixture


def dispatch(ctx, child, parent, backend):
    if backend == "yannakakis":
        # calling the leaking implementation from the leak-free
        # branch exceeds the registered contract
        return linear_impl(ctx, child, parent)
    return psi_join(ctx, child, parent)  # noqa: F821 - fixture
