"""OBL006 fixtures that must NOT be flagged (linted as if under repro/mpc)."""


@leaks("opened:result")  # noqa: F821 - fixture
def open_with_decorator(ctx, shares):  # oblint: secret-params=shares
    return reveal_vector(ctx, shares, label="out")  # noqa: F821 - fixture


def open_with_marker(ctx, sv):
    plain = sv.reconstruct()
    # oblint: leaks=opened:result
    return reveal_vector(ctx, plain, label="out")  # noqa: F821 - fixture


def open_untainted(ctx, sizes):
    # revealing untainted (public) values is not a leakage event
    return reveal_vector(ctx, sizes, label="sizes")  # noqa: F821 - fixture


@leaks("join_pattern:parent")  # noqa: F821 - fixture
def match_keys(ctx, keys, other):
    return dh_oprf_match(ctx, keys, other, label="m")  # noqa: F821 - fixture


@leaks("support:result")  # noqa: F821 - fixture
def drop_dangling(ctx, flags_shares):  # oblint: secret-params=flags_shares
    return reveal_nonzero_flags(ctx, flags_shares, label="nz")  # noqa: F821
