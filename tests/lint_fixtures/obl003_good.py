"""OBL003 fixtures that must NOT be flagged (linted as if under repro/mpc)."""

import numpy as np


def context_rng(ctx, n):
    return ctx.rng.integers(0, 2, size=n)


def seeded_layout_rng(seed):
    return np.random.default_rng(seed)  # seeded: deterministic, replayable
