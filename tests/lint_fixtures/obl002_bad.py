"""OBL002 fixtures that MUST be flagged (linted as if under repro/mpc)."""


def unlabelled_send(ctx, n):
    ctx.send("alice", n)  # no label


def empty_label(ctx, n):
    ctx.send("alice", n, "")  # empty label


def tainted_byte_count(ctx, sv):
    plain = sv.reconstruct()
    n = int(plain.sum())
    ctx.send("alice", n, "leaky")  # message length depends on secrets


def channel_bypass(transcript, n):
    transcript.messages.append(Message("alice", n, "x"))  # noqa: F821


def raw_transcript_send(ctx, n):
    # Bypasses the session framing layer (no seq/checksum/faults).
    ctx.transcript.send("alice", n, "raw")
