"""OBL008 fixtures that must NOT be flagged (linted as if under repro/mpc)."""

BACKENDS = ("yannakakis", "linear")

BACKEND_CONTRACTS = {
    "yannakakis": frozenset(),
    "linear": frozenset({"join_pattern:parent"}),
}


@leaks("join_pattern:parent")  # noqa: F821 - fixture
def linear_impl(ctx, child, parent):
    return dh_oprf_match(ctx, parent, child, label="m")  # noqa: F821 - fixture


def psi_join(ctx, child, parent):
    return garbled_psi(ctx, child, parent)  # noqa: F821 - fixture


def dispatch(ctx, child, parent, backend):
    if backend == "linear":
        return linear_impl(ctx, child, parent)
    else:
        # the else branch serves the remaining (leak-free) back-end;
        # psi_join declares no contract, so it fits
        return psi_join(ctx, child, parent)
