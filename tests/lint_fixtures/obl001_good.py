"""OBL001 fixtures that must NOT be flagged (linted as if under repro/mpc)."""


def branch_on_shape(ctx, sv):
    n = len(sv)  # len() is a declassifier: shapes are public
    if n > 0:
        return 1
    return 0


def branch_on_revealed(ctx, sv):
    plain = reveal_vector(ctx, sv, "alice")  # noqa: F821 - fixture
    if plain[0] > 0:  # designated reveal: public by protocol design
        return 1
    return 0


def simulated_cleartext(ctx, sv):
    if ctx.mode == Mode.SIMULATED:  # noqa: F821 - fixture
        plain = sv.reconstruct()
        if plain[0] > 0:  # simulation computes the functionality
            return 1
        return 0
    return run_real(ctx, sv)  # noqa: F821 - fixture


def public_marker(ctx, sv):
    hist = sv.reconstruct()
    bound = int(hist.max())  # oblint: public — bound is part of the revealed output
    if bound > 0:
        return 1
    return 0


def index_by_public(ctx, table, sv):
    out = []
    for i in range(len(sv)):
        out.append(table[i])  # public loop counter, fine
    return out
