"""OBL003 fixtures that MUST be flagged (linted as if under repro/mpc)."""

import random  # unsanctioned global randomness

import os


def global_numpy_draw(np):
    return np.random.rand(4)  # unseeded global generator


def unseeded_default_rng(np):
    return np.random.default_rng()  # no seed: not replayable


def os_entropy():
    return os.urandom(16)  # bypasses the context RNG
