"""OBL007 fixtures that MUST be flagged (linted as if under repro/mpc)."""


@leaks("join_pattern:parent")  # noqa: F821 - fixture
def rotted_contract(ctx, x):
    # nothing in this body (or its call closure) can reveal a join
    # pattern: the leak was removed but the declaration stayed
    return x + 1


@leaks("bogus:atom")  # noqa: F821 - fixture
def unknown_atom(ctx, shares):
    return reveal_vector(ctx, shares, label="out")  # noqa: F821 - fixture


def rotted_marker(ctx, x):
    # oblint: leaks=support:result
    return x * 2
