"""OBL006 fixtures that MUST be flagged (linted as if under repro/mpc)."""


def open_secret_params(ctx, shares):  # oblint: secret-params=shares
    return reveal_vector(ctx, shares, label="out")  # noqa: F821 - fixture


def open_reconstructed(ctx, sv):
    plain = sv.reconstruct()
    return reveal(ctx, plain, label="out")  # noqa: F821 - fixture


def match_keys(ctx, keys, other):
    # dh_oprf_match leaks by construction: fires even on untainted args
    return dh_oprf_match(ctx, keys, other, label="m")  # noqa: F821 - fixture


def interproc_leak(ctx, sv):
    # the secret is produced two frames away; the interprocedural
    # closure must still see it arrive at the sink
    shares = produce_shares(sv)
    return reveal_vector(ctx, shares, label="out")  # noqa: F821 - fixture


def produce_shares(sv):
    return sv.reconstruct()
