"""OBL004 fixtures that MUST be flagged (linted as if under repro/mpc)."""

import time


def wall_clock_label(ctx, n):
    stamp = time.time()
    ctx.send("alice", n, f"batch/{stamp}")  # label varies run to run


def id_in_section(ctx, obj):
    with ctx.section(f"node/{id(obj)}"):  # identity is nondeterministic
        pass


def set_order_label(ctx, names, n):
    for name in set(names):  # iteration order is not deterministic
        ctx.send("alice", n, name)
