"""OBL005 fixtures that MUST be flagged (linted as if under repro/mpc)."""


def mismatched_labels(ctx, n):
    if ctx.mode == Mode.SIMULATED:  # noqa: F821 - fixture
        ctx.send("alice", n, "sim_only_label")
        return
    ctx.send("alice", n, "real_only_label")
