"""OBL001 fixtures that MUST be flagged (linted as if under repro/mpc)."""


def branch_on_secret(ctx, sv):
    plain = sv.reconstruct()
    if plain[0] > 0:  # secret-dependent branch
        return 1
    return 0


def index_by_secret(ctx, table, sv):
    idx = sv.reconstruct()
    return table[idx[0]]  # secret-dependent memory access


def loop_on_secret(ctx, sv):
    total = sv.reconstruct().sum()
    while total > 0:  # secret-dependent loop bound
        total -= 1
    return total


def filter_by_secret(ctx, rows, sv):
    flags = sv.reconstruct()
    return [r for i, r in enumerate(rows) if flags[i]]  # length leaks


def share_attr_branch(ctx, sv):
    if sv.alice[0]:  # a share value IS the secret source
        return 1
    return 0
