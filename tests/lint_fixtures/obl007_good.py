"""OBL007 fixtures that must NOT be flagged (linted as if under repro/mpc)."""


@leaks("opened:result")  # noqa: F821 - fixture
def direct_witness(ctx, shares):
    return reveal_vector(ctx, shares, label="out")  # noqa: F821 - fixture


@leaks("opened:result")  # noqa: F821 - fixture
def closure_witness(ctx, shares):
    # witnessed transitively through the resolved callee
    return direct_witness(ctx, shares)


def marker_witness(ctx, sv):
    plain = sv.reconstruct()
    # oblint: leaks=opened:result
    return reveal_vector(ctx, plain, label="out")  # noqa: F821 - fixture


def reveal_nonzero_flags(ctx, shares, label):
    # a sink-named primitive witnesses its own atom intrinsically
    # (the real one hides the reveal behind mode dispatch)
    return _reveal_impl(ctx, shares, label)  # noqa: F821 - fixture


@leaks("support:result")  # noqa: F821 - fixture
def support_wrapper(ctx, shares):
    return reveal_nonzero_flags(ctx, shares, label="nz")
