"""OBL002 fixtures that must NOT be flagged (linted as if under repro/mpc)."""


def labelled_send(ctx, sv):
    ctx.send("alice", len(sv) * 4, "share")


def keyword_label(ctx, sv):
    ctx.send("bob", n_bytes=len(sv) * 4, label="reveal")


def shape_based_count(ctx, arr):
    ctx.send("alice", arr.nbytes, "matrix")  # shapes are public


def routed_send(ctx, sv):
    # ctx.send routes through the session layer when one is enabled.
    ctx.send("alice", len(sv) * 4, "routed")
