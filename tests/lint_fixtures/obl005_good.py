"""OBL005 fixtures that must NOT be flagged (linted as if under repro/mpc)."""


def matched_labels(ctx, n):
    if ctx.mode == Mode.SIMULATED:  # noqa: F821 - fixture
        ctx.send("alice", n, "payload")
        return
    ctx.send("alice", 2 * n, "payload")  # same label, different cost math


def shared_helper(ctx, n):
    if ctx.mode == Mode.SIMULATED:  # noqa: F821 - fixture
        charge(ctx, n)  # noqa: F821 - fixture
        return
    charge(ctx, n)  # noqa: F821 - fixture


def charge(ctx, n):
    ctx.send("alice", n, "ot/ciphertexts")
