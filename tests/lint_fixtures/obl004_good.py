"""OBL004 fixtures that must NOT be flagged (linted as if under repro/mpc)."""


def literal_label(ctx, n):
    ctx.send("alice", n, "share")


def counter_label(ctx, n):
    for i in range(3):
        ctx.send("alice", n, f"round/{i}")  # deterministic counter


def sorted_set_label(ctx, names, n):
    for name in sorted(set(names)):  # sorted() restores determinism
        ctx.send("alice", n, name)
