"""Oblivious (extended) permutation — both modes."""

import numpy as np
import pytest

from repro.mpc import Context, Mode
from repro.mpc.oep import (
    oblivious_extended_permutation,
    oblivious_permutation,
)
from repro.mpc.ot import make_ot
from repro.mpc.sharing import share_vector

from .conftest import TEST_GROUP_BITS


def setup(mode, seed=4):
    ctx = Context(mode, seed=seed)
    return ctx, make_ot(ctx, TEST_GROUP_BITS)


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestPermutation:
    def test_routes_values(self, mode):
        ctx, ot = setup(mode)
        rng = np.random.default_rng(1)
        n = 11
        vals = rng.integers(0, 10_000, n)
        sv = share_vector(ctx, "alice", vals)
        perm = list(rng.permutation(n))
        out = oblivious_permutation(ctx, ot, perm, sv)
        rec = out.reconstruct()
        for i, p in enumerate(perm):
            assert rec[p] == vals[i]

    def test_identity(self, mode):
        ctx, ot = setup(mode)
        sv = share_vector(ctx, "bob", [5, 6, 7])
        out = oblivious_permutation(ctx, ot, [0, 1, 2], sv)
        assert list(out.reconstruct()) == [5, 6, 7]

    def test_shares_refreshed(self, mode):
        ctx, ot = setup(mode)
        vals = np.arange(40, dtype=np.uint64)
        sv = share_vector(ctx, "alice", vals)
        out = oblivious_permutation(ctx, ot, list(range(40)), sv)
        # identity permutation, but the share vectors must change
        assert not (out.alice == sv.alice).all()

    def test_rejects_non_bijection(self, mode):
        ctx, ot = setup(mode)
        sv = share_vector(ctx, "alice", [1, 2])
        with pytest.raises(ValueError):
            oblivious_permutation(ctx, ot, [0, 0], sv)


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestExtendedPermutation:
    def test_repeats_and_drops(self, mode):
        ctx, ot = setup(mode)
        vals = np.asarray([10, 20, 30, 40], dtype=np.uint64)
        sv = share_vector(ctx, "bob", vals)
        xi = [3, 0, 0, 2, 0]
        out = oblivious_extended_permutation(ctx, ot, xi, sv, 5)
        assert list(out.reconstruct()) == [40, 10, 10, 30, 10]

    def test_expanding(self, mode):
        ctx, ot = setup(mode)
        sv = share_vector(ctx, "alice", [7])
        out = oblivious_extended_permutation(ctx, ot, [0] * 9, sv, 9)
        assert list(out.reconstruct()) == [7] * 9

    def test_shrinking(self, mode):
        ctx, ot = setup(mode)
        sv = share_vector(ctx, "alice", list(range(20)))
        out = oblivious_extended_permutation(ctx, ot, [19, 0], sv, 2)
        assert list(out.reconstruct()) == [19, 0]

    def test_random_agree_with_take(self, mode):
        ctx, ot = setup(mode)
        rng = np.random.default_rng(2)
        for _ in range(3):
            m = int(rng.integers(1, 30))
            n = int(rng.integers(1, 30))
            vals = rng.integers(0, 1000, m)
            sv = share_vector(ctx, "bob", vals)
            xi = [int(x) for x in rng.integers(0, m, n)]
            out = oblivious_extended_permutation(ctx, ot, xi, sv, n)
            assert (
                out.reconstruct() == vals[np.asarray(xi)].astype(np.uint64)
            ).all()

    def test_validates_xi(self, mode):
        ctx, ot = setup(mode)
        sv = share_vector(ctx, "alice", [1, 2])
        with pytest.raises(IndexError):
            oblivious_extended_permutation(ctx, ot, [2], sv, 1)
        with pytest.raises(ValueError):
            oblivious_extended_permutation(ctx, ot, [0, 1], sv, 1)


@pytest.mark.real
class TestCostParity:
    def test_modes_charge_identically(self):
        rng = np.random.default_rng(3)
        vals = rng.integers(0, 100, 13)
        xi = [int(x) for x in rng.integers(0, 13, 21)]

        def run(mode):
            ctx = Context(mode, seed=6)
            ot = make_ot(ctx, 2048)
            sv = share_vector(ctx, "alice", vals)
            oblivious_extended_permutation(ctx, ot, xi, sv, 21)
            return ctx.transcript.total_bytes

        assert run(Mode.REAL) == run(Mode.SIMULATED)

    def test_transcript_independent_of_xi(self):
        def run(xi):
            ctx = Context(Mode.SIMULATED, seed=6)
            ot = make_ot(ctx, 2048)
            sv = share_vector(ctx, "alice", list(range(10)))
            oblivious_extended_permutation(ctx, ot, xi, sv, 12)
            return ctx.transcript.fingerprint()

        assert run([0] * 12) == run(list(range(10)) + [9, 3])
