"""The circuit templates: semantics and shape of every gadget."""

import numpy as np
import pytest

from repro.mpc.gadgets import (
    bits_of,
    div_reveal_circuit,
    int_of,
    merge_or_circuit,
    merge_sum_circuit,
    mul_plain_circuit,
    mul_shared_circuit,
    nonzero_circuit,
    prod_shared_circuit,
    psi_bin_circuit,
    reveal_tuple_circuit,
)

ELL = 8
MOD = 1 << ELL


def w(v):
    return bits_of(v, ELL)


class TestMulTemplates:
    def test_mul_shared(self):
        c = mul_shared_circuit(ELL)
        out = c.evaluate(w(3) + w(5), w(4) + w(6) + w(9))
        assert int_of(out) == ((3 + 4) * (5 + 6) + 9) % MOD

    def test_mul_plain(self):
        c = mul_plain_circuit(ELL)
        out = c.evaluate(w(6) + w(100), w(200) + w(1))
        assert int_of(out) == (6 * ((100 + 200) % MOD) + 1) % MOD

    def test_caching(self):
        assert mul_shared_circuit(ELL) is mul_shared_circuit(ELL)
        assert mul_shared_circuit(8) is not mul_shared_circuit(16)


class TestNonzero:
    @pytest.mark.parametrize("x1,x2", [(0, 0), (3, 253), (5, 0), (0, 9)])
    def test_indicator(self, x1, x2):
        c = nonzero_circuit(ELL)
        out = c.evaluate(w(x1), w(x2) + w(7))
        expect = (1 if (x1 + x2) % MOD != 0 else 0) + 7
        assert int_of(out) == expect % MOD


class TestMergeChains:
    def test_sum_chain_groups(self):
        n = 5
        c = merge_sum_circuit(ELL, n)
        vals = [3, 4, 10, 1, 2]
        same = [1, 0, 0, 1]  # groups {0,1},{2},{3,4}
        v1 = [7, 1, 9, 2, 8]
        v2 = [(v - a) % MOD for v, a in zip(vals, v1)]
        r = [11, 12, 13, 14, 15]
        abits = list(same)
        for x in v1:
            abits += w(x)
        bbits = []
        for x in v2 + r:
            bbits += w(x)
        out = c.evaluate(abits, bbits)
        words = [
            (int_of(out[i * ELL : (i + 1) * ELL]) - r[i]) % MOD
            for i in range(n)
        ]
        assert words == [0, 7, 10, 0, 3]

    def test_sum_chain_single_tuple(self):
        c = merge_sum_circuit(ELL, 1)
        out = c.evaluate(w(5), w(6) + w(1))
        assert int_of(out) == 12

    def test_or_chain(self):
        n = 4
        c = merge_or_circuit(ELL, n)
        indicator = [0, 1, 0, 1]
        same = [1, 1, 0]  # groups {0,1,2}, {3}
        v1 = [1, 0, 1, 1]
        v2 = [(b - a) % 2 for b, a in zip(indicator, v1)]
        r = [5, 6, 7, 8]
        abits = list(same) + v1
        bbits = list(v2)
        for x in r:
            bbits += w(x)
        out = c.evaluate(abits, bbits)
        words = [
            (int_of(out[i * ELL : (i + 1) * ELL]) - r[i]) % MOD
            for i in range(n)
        ]
        assert words == [0, 0, 1, 1]

    def test_chain_size_linear(self):
        a2 = merge_sum_circuit(ELL, 2).and_count
        a3 = merge_sum_circuit(ELL, 3).and_count
        a5 = merge_sum_circuit(ELL, 5).and_count
        assert a5 - a3 == 2 * (a3 - a2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_sum_circuit(ELL, 0)


class TestPsiBin:
    def test_match_and_miss(self):
        fp = 12
        c = psi_bin_circuit(ELL, fp, reveal_payload=False)

        def run(t, s, p, wv, fb, ri, rp):
            out = c.evaluate(
                bits_of(t, fp) + w(p),
                bits_of(s, fp) + w(wv) + w(fb) + w(ri) + w(rp),
            )
            return (
                (int_of(out[:ELL]) - ri) % MOD,
                (int_of(out[ELL:]) - rp) % MOD,
            )

        assert run(500, 500, 10, 20, 99, 1, 2) == (1, 30)
        assert run(500, 501, 10, 20, 99, 1, 2) == (0, 99)

    def test_reveal_variant_skips_mask(self):
        fp = 12
        c = psi_bin_circuit(ELL, fp, reveal_payload=True)
        out = c.evaluate(
            bits_of(7, fp) + w(10),
            bits_of(7, fp) + w(20) + w(99) + w(3) + w(4),
        )
        assert int_of(out[ELL:]) == 30  # p + w, no r_pay


class TestProdAndDiv:
    def test_product_chain(self):
        c = prod_shared_circuit(ELL, 3)
        alice = w(1) + w(2) + w(3)
        bob = w(1) + w(1) + w(0) + w(5)
        out = c.evaluate(alice, bob)
        assert int_of(out) == (2 * 3 * 3 + 5) % MOD

    def test_prod_single_factor(self):
        c = prod_shared_circuit(ELL, 1)
        out = c.evaluate(w(9), w(1) + w(2))
        assert int_of(out) == 12

    def test_div(self):
        c = div_reveal_circuit(ELL)
        out = c.evaluate(w(100) + w(3), w(33) + w(7))
        assert int_of(out) == 133 // 10


class TestRevealTuple:
    def test_payload_gated_by_nonzero(self):
        c = reveal_tuple_circuit(ELL, 6)
        payload = [1, 0, 1, 1, 0, 1]
        out = c.evaluate(w(5), w((0 - 5) % MOD) + payload)
        assert out[0] == 0 and int_of(out[1:]) == 0
        out = c.evaluate(w(5), w(1) + payload)
        assert out[0] == 1 and out[1:] == payload
