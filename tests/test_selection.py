"""Selection policies (Section 7)."""

import pytest

from repro.core import SelectionPolicy, apply_selection, is_dummy_tuple
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import JoinAggregateQuery
from repro.relalg import AnnotatedRelation, IntegerRing

RING = IntegerRing(32)


@pytest.fixture
def rel():
    return AnnotatedRelation(
        ("k", "state"),
        [(1, "NY"), (2, "CA"), (3, "NY"), (4, "TX")],
        [10, 20, 30, 40],
        RING,
    )


def ny(row):
    return row["state"] == "NY"


class TestPolicies:
    def test_public_shrinks(self, rel):
        out = apply_selection(rel, ny, SelectionPolicy.PUBLIC)
        assert len(out) == 2
        assert out.to_dict() == {(1, "NY"): 10, (3, "NY"): 30}

    def test_private_keeps_size(self, rel):
        out = apply_selection(rel, ny, SelectionPolicy.PRIVATE)
        assert len(out) == 4
        assert out.to_dict() == {(1, "NY"): 10, (3, "NY"): 30}

    def test_bounded_pads_to_bound(self, rel):
        out = apply_selection(rel, ny, SelectionPolicy.BOUNDED, bound=3)
        assert len(out) == 3
        assert out.to_dict() == {(1, "NY"): 10, (3, "NY"): 30}
        assert sum(1 for t in out.tuples if is_dummy_tuple(t)) == 1

    def test_bound_must_cover_selection(self, rel):
        with pytest.raises(ValueError):
            apply_selection(rel, ny, SelectionPolicy.BOUNDED, bound=1)

    def test_bound_required(self, rel):
        with pytest.raises(ValueError):
            apply_selection(rel, ny, SelectionPolicy.BOUNDED)

    def test_all_policies_same_semantics(self, rel):
        outs = [
            apply_selection(rel, ny, SelectionPolicy.PUBLIC),
            apply_selection(rel, ny, SelectionPolicy.PRIVATE),
            apply_selection(rel, ny, SelectionPolicy.BOUNDED, bound=4),
        ]
        for a in outs:
            for b in outs:
                assert a.semantically_equal(b)


class TestCostOrdering:
    def test_protocol_cost_follows_disclosed_size(self, rel):
        other = AnnotatedRelation(
            ("k",), [(1,), (3,), (4,)], [5, 6, 7], RING
        )

        def run(policy, bound=None):
            filtered = apply_selection(rel, ny, policy, bound)
            q = (
                JoinAggregateQuery(output=[])
                .add_relation("R", filtered, owner=ALICE)
                .add_relation("S", other, owner=BOB)
            )
            eng = Engine(Context(Mode.SIMULATED, seed=2))
            result, stats = q.run_secure(eng)
            return result.to_dict(), stats.total_bytes

        pub, pub_b = run(SelectionPolicy.PUBLIC)
        bnd, bnd_b = run(SelectionPolicy.BOUNDED, 3)
        prv, prv_b = run(SelectionPolicy.PRIVATE)
        assert pub == bnd == prv
        assert pub_b <= bnd_b <= prv_b
