"""Ownership-split symmetry of the secure protocol.

Swapping every relation's owner (ALICE <-> BOB) must not change the
query answer, and the communication pattern must transform predictably:

* ``reduce`` / ``semijoin`` — these phases orient every sub-protocol at
  the relation *owner* (via ``Context.swapped_roles``), so a global
  owner flip mirrors the per-party byte counts exactly;
* ``full_join`` — Alice-anchored by design: Alice's sent bytes are
  owner-independent, while the reveal payloads (sent for Bob-owned
  relations only) move with the flip, so Bob's bytes may change;
* ``result`` — Alice is the designated receiver whoever owns what, so
  the section is identical, not mirrored.
"""

import pytest

from repro.mpc import ALICE, BOB, Engine, Mode
from repro.tpch import PREPARED, generate

SCALE = 1
SEED = 7

#: Sections whose per-party bytes must mirror exactly under the flip.
MIRRORED_SECTIONS = ("reduce", "semijoin")


def party_section_bytes(transcript):
    """``{(section, sender): bytes}`` at depth-1 section granularity."""
    out = {}
    for m in transcript.messages:
        section = m.label.split("/")[0] if m.label else ""
        key = (section, m.sender)
        out[key] = out.get(key, 0) + m.n_bytes
    return out


def run_pair(name, **prepare_kwargs):
    dataset = generate(SCALE)
    results, breakdowns = [], []
    for flip in (False, True):
        query = PREPARED[name](
            dataset, flip_owners=flip, **prepare_kwargs
        )
        engine = Engine(query.make_context(Mode.SIMULATED, seed=SEED))
        result, _ = query.run_secure(engine)
        results.append(result)
        breakdowns.append(party_section_bytes(engine.ctx.transcript))
    return results, breakdowns


def assert_symmetry(results, breakdowns):
    base, flipped = breakdowns
    assert results[0].semantically_equal(results[1])
    sections = {k[0] for k in base} | {k[0] for k in flipped}
    for section in sections:
        a1 = base.get((section, ALICE), 0)
        b1 = base.get((section, BOB), 0)
        a2 = flipped.get((section, ALICE), 0)
        b2 = flipped.get((section, BOB), 0)
        if section in MIRRORED_SECTIONS:
            assert (a1, b1) == (b2, a2), section
        elif section == "result":
            # Alice receives the result in both runs.
            assert (a1, b1) == (a2, b2), section
            assert a1 == 0, section
        elif section == "full_join":
            # Alice's traffic is owner-independent; only the reveal
            # payloads (for Bob-owned relations) move with the flip.
            assert a1 == a2, section


@pytest.mark.parametrize("name", ["Q3", "Q10", "Q18"])
def test_owner_flip_symmetry(name):
    results, breakdowns = run_pair(name)
    assert_symmetry(results, breakdowns)
    # The reduce phase really is exercised (mirroring isn't vacuous).
    assert breakdowns[0].get(("reduce", ALICE), 0) > 0


@pytest.mark.slow
@pytest.mark.parametrize("name,kwargs", [("Q8", {}), ("Q9", {"nations": [8]})])
def test_owner_flip_symmetry_composed(name, kwargs):
    results, breakdowns = run_pair(name, **kwargs)
    assert_symmetry(results, breakdowns)


def test_swap_owners_builder():
    from repro.query.builder import JoinAggregateQuery
    from repro.relalg import AnnotatedRelation, IntegerRing

    ring = IntegerRing(32)
    r1 = AnnotatedRelation(("a", "b"), [(1, 2)], [3], ring)
    r2 = AnnotatedRelation(("b", "c"), [(2, 4)], [5], ring)
    q = (
        JoinAggregateQuery(output=["b"])
        .add_relation("R1", r1, owner=ALICE)
        .add_relation("R2", r2, owner=BOB)
    )
    m = q.swap_owners()
    assert m.owners == {"R1": BOB, "R2": ALICE}
    assert m.output == q.output
    assert m.relations["R1"] is r1
    # Involution: flipping twice restores the original split.
    assert m.swap_owners().owners == q.owners
    # The cost model is owner-flip symmetric: same plan either way.
    assert str(m.plan()) == str(q.plan())
