"""The benchmark harness: series generation and shape checking."""

import pytest

from repro.bench import (
    FIGURES,
    check_figure_shape,
    format_figure,
    growth_exponent,
    run_figure,
)
from repro.bench.runner import FigureRow


class TestGrowthExponent:
    def test_linear(self):
        xs = [1, 2, 4, 8]
        assert growth_exponent(xs, [3 * x for x in xs]) == pytest.approx(1.0)

    def test_cubic(self):
        xs = [1, 2, 4, 8]
        assert growth_exponent(xs, [x**3 for x in xs]) == pytest.approx(3.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            growth_exponent([1], [1])


def mk_row(scale, eff, sec_s, sec_mb, gc_s, gc_mb, ok=True):
    return FigureRow(
        query="Q3",
        scale_mb=scale,
        effective_mb=eff,
        secure_seconds=sec_s,
        secure_mb=sec_mb,
        plain_seconds=sec_s / 100,
        plain_mb=eff,
        gc_seconds=gc_s,
        gc_mb=gc_mb,
        matches_plaintext=ok,
    )


class TestShapeCheck:
    def test_good_shape_passes(self):
        rows = [
            mk_row(1, 0.1, 1, 80, 1e7, 1e6),
            mk_row(3, 0.3, 3, 240, 27e7, 27e6),
            mk_row(10, 1.0, 10, 800, 1e10, 1e9),
        ]
        assert check_figure_shape(rows) == []

    def test_flags_superlinear_secure_cost(self):
        rows = [
            mk_row(1, 0.1, 1, 10, 1e7, 1e6),
            mk_row(3, 0.3, 9, 90, 27e7, 27e6),
            mk_row(10, 1.0, 100, 1000, 1e10, 1e9),
        ]
        assert any("exponent" in p for p in check_figure_shape(rows))

    def test_flags_result_mismatch(self):
        rows = [mk_row(1, 0.1, 1, 80, 1e7, 1e6, ok=False)]
        assert any("match" in p for p in check_figure_shape(rows))

    def test_flags_gc_winning(self):
        rows = [mk_row(1, 0.1, 1, 80, 0.1, 1)]
        problems = check_figure_shape(rows)
        assert len(problems) >= 2


class TestRunner:
    def test_unknown_query(self):
        with pytest.raises(KeyError):
            run_figure("Q99")

    def test_q3_one_scale(self):
        rows = run_figure("Q3", scales=[1])
        assert len(rows) == 1
        r = rows[0]
        assert r.matches_plaintext
        assert r.gc_mb > 100 * r.secure_mb
        assert r.plain_mb < r.secure_mb

    def test_format_contains_figure_number(self):
        rows = run_figure("Q10", scales=[1])
        text = format_figure(rows)
        assert f"Figure {FIGURES['Q10']}" in text
        assert "yes" in text


class TestHumanFormatting:
    def test_time_units(self):
        from repro.bench.runner import _human_time

        assert _human_time(5) == "5.00s"
        assert _human_time(300) == "5.0min"
        assert _human_time(7200) == "2.0h"
        assert _human_time(86400 * 4) == "4.0d"
        assert _human_time(86400 * 365.25 * 2) == "2.0y"

    def test_size_units(self):
        from repro.bench.runner import _human_mb

        assert _human_mb(0.5) == "500KB"
        assert _human_mb(12) == "12.0MB"
        assert _human_mb(2_000) == "2.0GB"
        assert _human_mb(3e6) == "3.0TB"
        assert _human_mb(4e9) == "4.0PB"
        assert _human_mb(5e12) == "5.0EB"
