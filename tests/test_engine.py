"""The engine's vectorised secure operations — both modes."""

import numpy as np
import pytest

from repro.mpc import ALICE, BOB, Context, Engine, Mode

from .conftest import TEST_GROUP_BITS


def mk_engine(mode, seed=21):
    return Engine(Context(mode, seed=seed), TEST_GROUP_BITS)


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestProducts:
    def test_mul_shared(self, mode):
        eng = mk_engine(mode)
        rng = np.random.default_rng(1)
        x = eng.share(ALICE, rng.integers(0, 2**31, 8))
        y = eng.share(BOB, rng.integers(0, 2**31, 8))
        z = eng.mul_shared(x, y)
        expect = (x.reconstruct() * y.reconstruct()) & eng.ctx.mask
        assert (z.reconstruct() == expect).all()

    def test_mul_alice_plain(self, mode):
        eng = mk_engine(mode)
        a = np.asarray([0, 1, 7, 2**31], dtype=np.uint64)
        y = eng.share(BOB, [5, 5, 5, 5])
        z = eng.mul_alice_plain(a, y)
        assert (z.reconstruct() == (a * 5) & eng.ctx.mask).all()

    def test_mul_gc_variant(self, mode):
        eng = mk_engine(mode)
        x = eng.share(ALICE, [3, 0, 9])
        y = eng.share(BOB, [4, 7, 0])
        z = eng.mul_shared(x, y, via="gc")
        assert list(z.reconstruct()) == [12, 0, 0]

    def test_product_across(self, mode):
        eng = mk_engine(mode)
        fs = [
            eng.share(ALICE, [2, 1]),
            eng.share(BOB, [3, 5]),
            eng.share(ALICE, [4, 0]),
        ]
        z = eng.product_across(fs)
        assert list(z.reconstruct()) == [24, 0]

    def test_indicator_nonzero(self, mode):
        eng = mk_engine(mode)
        x = eng.share(ALICE, [0, 1, 0, 2**31, 0])
        z = eng.indicator_nonzero(x)
        assert list(z.reconstruct()) == [0, 1, 0, 1, 0]

    def test_output_shares_fresh(self, mode):
        eng = mk_engine(mode)
        x = eng.share(ALICE, [7] * 16)
        y = eng.share(BOB, [1] * 16)
        z = eng.mul_shared(x, y)
        assert not (z.alice == x.alice).all()


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestMergeChains:
    def test_sum_groups(self, mode):
        eng = mk_engine(mode)
        v = eng.share(ALICE, [3, 4, 5, 6, 7, 8])
        same = [True, False, False, True, True]
        out = eng.merge_aggregate_sum(same, v)
        assert list(out.reconstruct()) == [0, 7, 5, 0, 0, 21]

    def test_or_groups(self, mode):
        eng = mk_engine(mode)
        v = eng.share(BOB, [0, 1, 0, 0, 1, 0])
        same = [True, False, False, True, True]
        out = eng.merge_aggregate_or(same, v)
        assert list(out.reconstruct()) == [0, 1, 0, 0, 0, 1]

    def test_single_element(self, mode):
        eng = mk_engine(mode)
        v = eng.share(ALICE, [9])
        assert list(eng.merge_aggregate_sum([], v).reconstruct()) == [9]

    def test_empty(self, mode):
        eng = mk_engine(mode)
        out = eng.merge_aggregate_sum([], eng.zeros(0))
        assert len(out) == 0

    def test_wraparound_sum(self, mode):
        eng = mk_engine(mode)
        big = eng.ctx.modulus - 1
        v = eng.share(ALICE, [big, 2])
        out = eng.merge_aggregate_sum([True], v)
        assert list(out.reconstruct()) == [0, 1]

    def test_indicator_count_mismatch(self, mode):
        eng = mk_engine(mode)
        v = eng.share(ALICE, [1, 2])
        with pytest.raises(ValueError):
            eng.merge_aggregate_sum([], v)


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestRevealAndDivide:
    def test_reveal_nonzero_flags(self, mode):
        eng = mk_engine(mode)
        v = eng.share(BOB, [0, 3, 0, 1])
        flags, payloads = eng.reveal_nonzero_flags(v)
        assert list(flags) == [False, True, False, True]
        assert payloads is None

    def test_reveal_with_payloads(self, mode):
        eng = mk_engine(mode)
        v = eng.share(BOB, [0, 3])
        pb = [[1, 1, 0, 1], [0, 1, 1, 0]]
        flags, payloads = eng.reveal_nonzero_flags(v, pb)
        assert payloads[0] == [0, 0, 0, 0]  # hidden: annotation is 0
        assert payloads[1] == [0, 1, 1, 0]

    def test_divide_reveal(self, mode):
        eng = mk_engine(mode)
        x = eng.share(ALICE, [100, 17, 5])
        y = eng.share(BOB, [7, 3, 0])
        q = eng.divide_reveal(x, y)
        assert list(q[:2]) == [14, 5]
        assert q[2] == eng.ctx.modulus - 1  # division by zero sentinel


@pytest.mark.real
class TestCostParity:
    def test_mul_bytes_match_across_modes(self):
        def run(mode):
            eng = Engine(Context(mode, seed=5), 2048)
            x = eng.share(ALICE, list(range(10)))
            y = eng.share(BOB, list(range(10)))
            eng.mul_shared(x, y)
            return eng.ctx.transcript.total_bytes

        assert run(Mode.REAL) == run(Mode.SIMULATED)

    def test_merge_chain_extrapolated_charge_is_exact(self):
        """The SIMULATED chain charge must equal REAL's actual bytes."""

        def run(mode, n):
            eng = Engine(Context(mode, seed=5), 2048)
            v = eng.share(ALICE, list(range(n)))
            eng.merge_aggregate_sum([i % 2 == 0 for i in range(n - 1)], v)
            return eng.ctx.transcript.total_bytes

        for n in (2, 3, 7, 12):
            assert run(Mode.REAL, n) == run(Mode.SIMULATED, n), n

    def test_gilboa_transcript_value_independent(self):
        def run(vals_a, vals_b):
            eng = mk_engine(Mode.SIMULATED)
            x = eng.share(ALICE, vals_a)
            y = eng.share(BOB, vals_b)
            eng.mul_shared(x, y)
            return eng.ctx.transcript.fingerprint()

        assert run([0, 0, 0], [1, 2, 3]) == run(
            [2**31, 5, 17], [0, 0, 0]
        )


@pytest.mark.real
class TestOrChainParity:
    def test_or_chain_bytes_match_across_modes(self):
        def run(mode, n):
            eng = Engine(Context(mode, seed=6), 2048)
            v = eng.share(BOB, [i % 2 for i in range(n)])
            eng.merge_aggregate_or([i % 3 == 0 for i in range(n - 1)], v)
            return eng.ctx.transcript.total_bytes

        for n in (2, 5, 9):
            assert run(Mode.REAL, n) == run(Mode.SIMULATED, n), n
