"""The two-phase (original Yannakakis) ablation: same results, higher
cost than the paper's reduce-first modification."""

import numpy as np
import pytest

from repro.core import SecureRelation, secure_yannakakis
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import (
    build_plan,
    build_two_phase_plan,
    execute_plan,
    naive_join_aggregate,
)

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


def make_inputs(seed=0, n=30):
    rng = np.random.default_rng(seed)
    rels = {}
    for name, attrs in {
        "R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d"),
    }.items():
        tuples = [
            tuple(int(v) for v in rng.integers(0, 8, 2)) for _ in range(n)
        ]
        rels[name] = AnnotatedRelation(
            attrs, tuples, rng.integers(0, 20, n), RING
        )
    return rels


def plans(output=("d",)):
    h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d")})
    tree = find_free_connex_tree(h, set(output))
    return build_plan(tree, output), build_two_phase_plan(tree, output)


class TestEquivalence:
    def test_plain_executors_agree(self):
        rels = make_inputs()
        three, two = plans()
        expect = naive_join_aggregate(rels, ["d"])
        assert execute_plan(three, rels).semantically_equal(expect)
        assert execute_plan(two, rels).semantically_equal(expect)

    def test_two_phase_semijoins_whole_tree(self):
        three, two = plans()
        assert two.semijoin_first
        assert len(two.semijoin_steps) >= len(three.semijoin_steps)
        assert len(two.semijoin_steps) == 4  # 2 edges x 2 passes

    def test_secure_two_phase_matches(self):
        rels = make_inputs(seed=1, n=12)
        _, two = plans()
        expect = naive_join_aggregate(rels, ["d"])
        engine = Engine(Context(Mode.SIMULATED, seed=2), TEST_GROUP_BITS)
        sec = {
            n: SecureRelation.from_annotated(
                ALICE if i % 2 == 0 else BOB, rels[n]
            )
            for i, n in enumerate(sorted(rels))
        }
        result, _ = secure_yannakakis(engine, sec, two)
        assert result.semantically_equal(expect)


class TestCost:
    def test_reduce_first_is_cheaper(self):
        """The paper's Section 6.4 remark, measured: semijoining before
        reducing pays for operators the reduce phase would have
        eliminated."""
        rels = make_inputs(seed=3, n=40)

        def run(plan):
            engine = Engine(
                Context(Mode.SIMULATED, seed=4), TEST_GROUP_BITS
            )
            sec = {
                n: SecureRelation.from_annotated(
                    ALICE if i % 2 == 0 else BOB, rels[n]
                )
                for i, n in enumerate(sorted(rels))
            }
            _, stats = secure_yannakakis(engine, sec, plan)
            return stats.total_bytes

        three, two = plans()
        assert run(three) < run(two)
