"""The batched OPRF and the polynomial OPPRF hints."""

import numpy as np
import pytest

from repro.mpc import Context, Mode
from repro.mpc.oprf import (
    OPPRF_PRIME,
    BatchedOprf,
    poly_eval,
    poly_interpolate,
)

GROUP_BITS = 1536


class TestPolynomials:
    def test_interpolation_hits_points(self):
        pts = [(3, 10), (7, 20), (11, 5)]
        coeffs = poly_interpolate(pts)
        for x, y in pts:
            assert poly_eval(coeffs, x) == y

    def test_degree_matches_point_count(self):
        pts = [(1, 1), (2, 4), (3, 9), (4, 16)]
        assert len(poly_interpolate(pts)) == 4

    def test_rejects_duplicate_x(self):
        with pytest.raises(ValueError):
            poly_interpolate([(1, 2), (1, 3)])

    def test_random_roundtrip(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            k = int(rng.integers(1, 12))
            xs = list(
                {int(x) for x in rng.integers(0, OPPRF_PRIME, 3 * k)}
            )[:k]
            ys = [int(y) for y in rng.integers(0, OPPRF_PRIME, len(xs))]
            coeffs = poly_interpolate(list(zip(xs, ys)))
            for x, y in zip(xs, ys):
                assert poly_eval(coeffs, x) == y

    def test_constant_polynomial(self):
        coeffs = poly_interpolate([(5, 42)])
        assert poly_eval(coeffs, 999) == 42


@pytest.mark.real
class TestBatchedOprf:
    def test_real_alice_values_match_bob_evaluation(self):
        ctx = Context(Mode.REAL, seed=1)
        fps = [int(f) for f in np.random.default_rng(1).integers(
            0, 1 << 62, 12
        )]
        oprf = BatchedOprf(ctx, fps, GROUP_BITS)
        # Consistency: Bob evaluating on Alice's input recovers F_j(x_j).
        for j, fp in enumerate(fps):
            assert oprf.bob_eval(j, fp) == oprf.alice_values[j]

    def test_real_outputs_differ_across_rows(self):
        ctx = Context(Mode.REAL, seed=2)
        oprf = BatchedOprf(ctx, [7, 7, 7], GROUP_BITS)
        # The same input in different rows gets independent PRF values.
        assert len(set(oprf.alice_values)) == 3

    def test_real_other_inputs_look_unrelated(self):
        ctx = Context(Mode.REAL, seed=3)
        oprf = BatchedOprf(ctx, [1, 2], GROUP_BITS)
        assert oprf.bob_eval(0, 99) != oprf.alice_values[0]

    def test_simulated_consistency(self):
        ctx = Context(Mode.SIMULATED, seed=4)
        fps = [10, 20, 30]
        oprf = BatchedOprf(ctx, fps)
        for j, fp in enumerate(fps):
            assert oprf.bob_eval(j, fp) == oprf.alice_values[j]
        assert oprf.bob_eval(0, 999) != oprf.alice_values[0]

    def test_simulated_charges_real_shape(self):
        sim = Context(Mode.SIMULATED, seed=5)
        BatchedOprf(sim, list(range(40)))
        assert sim.transcript.total_bytes > 0
        # The u-matrix charge scales with the row count.
        sim2 = Context(Mode.SIMULATED, seed=5)
        BatchedOprf(sim2, list(range(4000)))
        assert (
            sim2.transcript.total_bytes > sim.transcript.total_bytes
        )

    def test_empty_input(self):
        ctx = Context(Mode.REAL, seed=6)
        oprf = BatchedOprf(ctx, [], GROUP_BITS)
        assert oprf.alice_values == []
