"""The differential-privacy extension (Section 7)."""

from functools import partial

import numpy as np
import pytest

from repro.core.dp import (
    discrete_laplace,
    dp_reveal,
    joint_sensitivity,
    max_multiplicity,
)
from repro.mpc import ALICE, BOB
from repro.relalg import AnnotatedRelation, IntegerRing
from repro.tpch.queries import to_signed

from .conftest import make_engine

RING = IntegerRing(32)


mk_engine = partial(make_engine, seed=3, group_bits=2048)


class TestSensitivity:
    def test_max_multiplicity(self):
        rel = AnnotatedRelation(
            ("k", "v"), [(1, 1), (1, 2), (1, 3), (2, 1)], None, RING
        )
        assert max_multiplicity(rel, ["k"]) == 3
        assert max_multiplicity(rel, ["k", "v"]) == 1

    def test_empty_relation(self):
        rel = AnnotatedRelation(("k",), [], None, RING)
        assert max_multiplicity(rel, ["k"]) == 0

    def test_joint_sensitivity_is_product(self):
        eng = mk_engine()
        assert joint_sensitivity(eng, 3, 7) == 21

    def test_joint_sensitivity_uses_protocol(self):
        eng = mk_engine()
        before = eng.ctx.transcript.total_bytes
        joint_sensitivity(eng, 2, 2)
        assert eng.ctx.transcript.total_bytes > before


class TestNoise:
    def test_zero_scale_is_noiseless(self):
        rng = np.random.default_rng(0)
        assert (discrete_laplace(rng, 0, 10) == 0).all()

    def test_distribution_shape(self):
        rng = np.random.default_rng(1)
        samples = discrete_laplace(rng, 5.0, 20_000)
        # symmetric around 0, std close to sqrt(2)*b for the two-sided
        # geometric with b=5
        assert abs(samples.mean()) < 0.5
        assert 5.0 < samples.std() < 9.0

    def test_integer_valued(self):
        rng = np.random.default_rng(2)
        assert discrete_laplace(rng, 2.5, 100).dtype == np.int64


class TestDpReveal:
    def test_noise_magnitude_tracks_epsilon(self):
        eng = mk_engine()
        true = 1_000_000
        sv = eng.share(ALICE, [true] * 400)
        loose = dp_reveal(eng, sv, sensitivity=10, epsilon=0.1)
        tight = dp_reveal(eng, sv, sensitivity=10, epsilon=100.0)
        err_loose = np.mean(
            [abs(to_signed(int(v) - true, 32)) for v in loose]
        )
        err_tight = np.mean(
            [abs(to_signed(int(v) - true, 32)) for v in tight]
        )
        assert err_tight < err_loose

    def test_tight_epsilon_is_nearly_exact(self):
        eng = mk_engine()
        sv = eng.share(BOB, [500])
        out = dp_reveal(eng, sv, sensitivity=1, epsilon=1000.0)
        assert abs(to_signed(int(out[0]) - 500, 32)) <= 1

    def test_rejects_bad_epsilon(self):
        eng = mk_engine()
        sv = eng.share(ALICE, [1])
        with pytest.raises(ValueError):
            dp_reveal(eng, sv, sensitivity=1, epsilon=0)

    def test_noise_added_before_reveal(self):
        """Alice's view contains only the noisy value: the reveal message
        carries Bob's (already noised) share."""
        eng = mk_engine(seed=9)
        sv = eng.share(ALICE, [100])
        out1 = dp_reveal(eng, sv, sensitivity=50, epsilon=0.5)
        out2 = dp_reveal(eng, sv, sensitivity=50, epsilon=0.5)
        # fresh noise each time
        assert int(out1[0]) != int(out2[0])
