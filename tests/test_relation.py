"""Unit tests for AnnotatedRelation."""

import numpy as np
import pytest

from repro.relalg import AnnotatedRelation, IntegerRing


RING = IntegerRing(16)


def rel(tuples, annots=None, attrs=("a", "b")):
    return AnnotatedRelation(attrs, tuples, annots, RING)


class TestConstruction:
    def test_default_annotations_are_one(self):
        r = rel([(1, 2), (3, 4)])
        assert list(r.annotations) == [1, 1]

    def test_rejects_arity_mismatch(self):
        with pytest.raises(ValueError):
            rel([(1, 2, 3)])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError):
            AnnotatedRelation(("a", "a"), [], None, RING)

    def test_rejects_annotation_length_mismatch(self):
        with pytest.raises(ValueError):
            rel([(1, 2)], [1, 2])

    def test_rejects_float_annotations(self):
        with pytest.raises(TypeError):
            rel([(1, 2)], np.asarray([1.5]))

    def test_annotations_normalised_into_ring(self):
        r = rel([(1, 2)], [RING.modulus + 7])
        assert list(r.annotations) == [7]

    def test_from_rows(self):
        r = AnnotatedRelation.from_rows(
            ("x", "y"),
            [{"x": 1, "y": 2, "z": 9}, {"x": 3, "y": 4, "z": 1}],
            annotation_of=lambda row: row["z"],
            semiring=RING,
        )
        assert r.tuples == [(1, 2), (3, 4)]
        assert list(r.annotations) == [9, 1]

    def test_empty(self):
        r = AnnotatedRelation.empty(("a",), RING)
        assert len(r) == 0


class TestAccessors:
    def test_keys_preserve_order_and_duplicates(self):
        r = rel([(1, 2), (1, 3), (1, 2)])
        assert r.keys(["a"]) == [(1,), (1,), (1,)]
        assert r.keys(["b", "a"]) == [(2, 1), (3, 1), (2, 1)]

    def test_index_of_missing_attribute(self):
        with pytest.raises(KeyError):
            rel([]).index_of(["nope"])

    def test_column(self):
        r = rel([(1, 2), (3, 4)])
        assert r.column("b") == [2, 4]

    def test_annotation_of_sums_duplicates(self):
        r = rel([(1, 2), (1, 2), (9, 9)], [5, 7, 1])
        assert r.annotation_of((1, 2)) == 12
        assert r.annotation_of((0, 0)) == 0

    def test_to_dict_drops_zero(self):
        r = rel([(1, 2), (3, 4)], [0, 9])
        assert r.to_dict() == {(3, 4): 9}

    def test_to_dict_merges_cancelling_duplicates(self):
        r = rel([(1, 2), (1, 2)], [5, RING.modulus - 5])
        assert r.to_dict() == {}

    def test_nonzero(self):
        r = rel([(1, 2), (3, 4), (5, 6)], [0, 2, 0])
        nz = r.nonzero()
        assert nz.tuples == [(3, 4)]
        assert list(nz.annotations) == [2]


class TestSemanticEquality:
    def test_ignores_dummy_zero_tuples(self):
        r1 = rel([(1, 2)], [5])
        r2 = rel([(1, 2), (9, 9)], [5, 0])
        assert r1.semantically_equal(r2)
        assert r2.semantically_equal(r1)

    def test_attribute_order_insensitive(self):
        r1 = rel([(1, 2)], [5], attrs=("a", "b"))
        r2 = rel([(2, 1)], [5], attrs=("b", "a"))
        assert r1.semantically_equal(r2)

    def test_detects_value_difference(self):
        assert not rel([(1, 2)], [5]).semantically_equal(rel([(1, 2)], [6]))

    def test_detects_attr_set_difference(self):
        assert not rel([(1, 2)]).semantically_equal(
            AnnotatedRelation(("a", "c"), [(1, 2)], None, RING)
        )

    def test_semiring_mismatch(self):
        other = AnnotatedRelation(("a", "b"), [(1, 2)], None, IntegerRing(8))
        assert not rel([(1, 2)]).semantically_equal(other)

    def test_replace(self):
        r = rel([(1, 2)], [5])
        r2 = r.replace(annotations=[7])
        assert list(r2.annotations) == [7]
        assert r2.tuples == r.tuples
