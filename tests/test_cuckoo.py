"""Cuckoo hashing, simple hashing, bin-load bounds, item encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc.cuckoo import (
    DUMMY_ALICE,
    DUMMY_BOB,
    CuckooTable,
    encode_item,
    fingerprint,
    max_bin_load,
    num_bins,
    simple_hash_bins,
)


class TestEncodeItem:
    def test_types_are_disjoint(self):
        # 1 and "1" and (1,) must encode differently.
        assert encode_item(1) != encode_item("1")
        assert encode_item(1) != encode_item((1,))
        assert encode_item(True) != encode_item(1)

    def test_tuple_structure_preserved(self):
        assert encode_item((1, 2)) != encode_item((12,))
        assert encode_item(("ab", "c")) != encode_item(("a", "bc"))

    def test_negative_ints(self):
        assert encode_item(-5) != encode_item(5)

    def test_nested_tuples(self):
        assert encode_item(((1, 2), 3)) != encode_item((1, (2, 3)))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_item(3.14)

    @given(
        a=st.one_of(st.integers(), st.text(max_size=8)),
        b=st.one_of(st.integers(), st.text(max_size=8)),
    )
    def test_injective_on_scalars(self, a, b):
        if a != b:
            assert encode_item(a) != encode_item(b)


class TestFingerprint:
    def test_in_real_subspace(self):
        fp = fingerprint(("x", 1), b"salt")
        assert fp >> 62 == 0  # top two bits reserved for dummies

    def test_dummy_spaces_disjoint(self):
        assert DUMMY_ALICE >> 62 == 2
        assert DUMMY_BOB >> 62 == 3

    def test_salt_changes_fingerprint(self):
        assert fingerprint(1, b"a" * 16) != fingerprint(1, b"b" * 16)


class TestCuckooTable:
    def test_each_item_in_one_candidate_bin(self):
        items = [("item", i) for i in range(200)]
        table = CuckooTable(items)
        for idx in range(len(items)):
            assert any(
                table.bins[b] == idx for b in table.bins_of_index(idx)
            )

    def test_at_most_one_item_per_bin(self):
        table = CuckooTable(list(range(300)))
        occupied = table.bins[table.bins >= 0]
        assert len(set(occupied)) == len(occupied)

    def test_occupancy_equals_item_count(self):
        table = CuckooTable(list(range(50)))
        assert table.occupancy() == 50

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CuckooTable([1, 1, 2])

    def test_empty_set(self):
        table = CuckooTable([], n_bins=1)
        assert table.occupancy() == 0

    def test_default_bins_expansion(self):
        table = CuckooTable(list(range(100)))
        assert table.n_bins == num_bins(100) == 127

    def test_bins_of_item_matches_index(self):
        items = ["a", "b", "c"]
        table = CuckooTable(items)
        for i, item in enumerate(items):
            assert table.bins_of_item(item) == table.bins_of_index(i)

    def test_deterministic_given_seed(self):
        t1 = CuckooTable(list(range(64)), seed=5)
        t2 = CuckooTable(list(range(64)), seed=5)
        assert (t1.bins == t2.bins).all()

    def test_impossible_table_raises(self):
        with pytest.raises(RuntimeError):
            CuckooTable(list(range(10)), n_bins=3, max_rehashes=2)


class TestSimpleHashing:
    def test_items_land_in_their_candidate_bins(self):
        alice = CuckooTable(list(range(50)))
        bob_items = list(range(25, 75))
        bins = simple_hash_bins(bob_items, alice.seeds, alice.n_bins)
        for idx, item in enumerate(bob_items):
            candidates = set(alice.bins_of_item(item))
            holding = {b for b, members in enumerate(bins) if idx in members}
            assert holding <= candidates
            assert holding  # at least one bin

    def test_common_item_shares_a_bin(self):
        # The PSI correctness invariant: equal items meet in the bin the
        # cuckoo table chose for Alice's copy.
        alice = CuckooTable(list(range(40)))
        bins = simple_hash_bins(list(range(40)), alice.seeds, alice.n_bins)
        for i in range(40):
            b = [j for j, idx in enumerate(alice.bins) if idx == i][0]
            assert i in bins[b]


class TestLoadBound:
    def test_bound_holds_empirically(self):
        n, bins = 500, num_bins(400)
        bound = max_bin_load(n, bins)
        rng = np.random.default_rng(0)
        for trial in range(5):
            items = [("t", trial, i) for i in range(n)]
            table = CuckooTable(list(range(400)), seed=trial)
            hashed = simple_hash_bins(items, table.seeds, bins)
            assert max(len(b) for b in hashed) <= bound

    def test_bound_monotone_in_sigma(self):
        assert max_bin_load(100, 127, sigma=60) >= max_bin_load(
            100, 127, sigma=20
        )

    def test_zero_items(self):
        assert max_bin_load(0, 10) == 1
