"""The columnar data plane (PR 6): boundary regressions, store laws,
columnar-vs-reference operator equivalence, representation independence
of the secure transcript, and the SQL baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SecureRelation, secure_yannakakis
from repro.fuzz.generator import TINY_CONFIG, generate_instance
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.mpc.params import SecurityParams
from repro.mpc.sharing import as_ring_column
from repro.relalg import AnnotatedRelation, IntegerRing
from repro.relalg import _reference
from repro.relalg.columns import (
    Column,
    TupleStore,
    group_by_first_appearance,
    is_dummy_tuple,
    joint_row_codes,
)
from repro.baselines import run_sql_baseline, sql_backend_name

from .conftest import TEST_GROUP_BITS


# ----------------------------------------------------------------------
# satellite 1: integer-width boundary regressions
# ----------------------------------------------------------------------


class TestAnnotationBoundaries:
    """Annotations at and above 2^63 must survive normalisation exactly.

    The seed's int64 round-trip silently wrapped ``uint64`` inputs
    >= 2^63 and overflowed outright for ``ell = 63`` moduli."""

    def test_ell_63_top_of_ring_exact(self):
        ring = IntegerRing(63)
        values = np.asarray(
            [2**62, 2**63 - 1, 2**62 + 17], dtype=np.uint64
        )
        rel = AnnotatedRelation(("a",), [(0,), (1,), (2,)], values, ring)
        assert rel.annotations.tolist() == [2**62, 2**63 - 1, 2**62 + 17]

    def test_uint64_above_2_63_reduces_without_overflow(self):
        # numpy raises OverflowError on ``int64_array % 2**63`` — the
        # normalisation must stay in uint64 space the whole way.
        ring = IntegerRing(63)
        values = np.asarray([2**63 + 5, 2**64 - 1], dtype=np.uint64)
        rel = AnnotatedRelation(("a",), [(0,), (1,)], values, ring)
        assert rel.annotations.tolist() == [5, 2**63 - 1]

    def test_python_int_annotations_above_int64(self):
        ring = IntegerRing(63)
        rel = AnnotatedRelation(("a",), [(0,)], [2**64 - 1], ring)
        assert int(rel.annotations[0]) == 2**63 - 1

    def test_negative_int64_wraps(self):
        ring = IntegerRing(63)
        values = np.asarray([-1, -(2**62)], dtype=np.int64)
        rel = AnnotatedRelation(("a",), [(0,), (1,)], values, ring)
        assert rel.annotations.tolist() == [2**63 - 1, 2**63 - 2**62]

    @pytest.mark.parametrize("ell", [32, 63])
    def test_as_ring_column_boundaries(self, ell):
        mod = 1 << ell
        arr = np.asarray([2**63, 2**64 - 1, 0], dtype=np.uint64)
        out = as_ring_column(arr, mod)
        assert out.dtype == np.uint64
        assert out.tolist() == [
            2**63 % mod, (2**64 - 1) % mod, 0
        ]

    def test_share_column_round_trips_high_values(self):
        ctx = Context(Mode.SIMULATED, SecurityParams(ell=63), seed=3)
        engine = Engine(ctx, TEST_GROUP_BITS)
        values = np.asarray([2**62, 2**63 - 1, 12345], dtype=np.uint64)
        sv = engine.share_column(ALICE, values)
        back = engine.reconstruct_column(sv, to=BOB)
        assert back.tolist() == values.tolist()

    def test_select_alice_plain(self):
        ctx = Context(Mode.SIMULATED, seed=4)
        engine = Engine(ctx, TEST_GROUP_BITS)
        x = engine.share_column(ALICE, [10, 20, 30, 40])
        y = engine.share_column(BOB, [1, 2, 3, 4])
        out = engine.select_alice_plain([1, 0, 0, 1], x, y)
        assert out.reconstruct().tolist() == [10, 2, 3, 40]
        with pytest.raises(ValueError):
            engine.select_alice_plain([2, 0, 0, 0], x, y)


# ----------------------------------------------------------------------
# tentpole: TupleStore laws
# ----------------------------------------------------------------------


ROWS = [(1, "x", 7), (2, "y", 7), (1, "x", 9), (3, "z", 7)]
ATTRS = ("a", "b", "c")


class TestTupleStore:
    def test_round_trip(self):
        store = TupleStore.from_tuples(ATTRS, ROWS)
        assert store.materialize() == ROWS

    def test_from_columns_equals_from_tuples(self):
        cols = [
            Column.from_values([row[i] for row in ROWS])
            for i in range(len(ATTRS))
        ]
        a = TupleStore.from_columns(ATTRS, cols)
        b = TupleStore.from_tuples(ATTRS, ROWS)
        assert a.materialize() == b.materialize()

    def test_take_project_concat(self):
        store = TupleStore.from_tuples(ATTRS, ROWS)
        taken = store.take(np.asarray([3, 0]))
        assert taken.materialize() == [ROWS[3], ROWS[0]]
        proj = store.project(("c", "a"))
        assert proj.materialize() == [(r[2], r[0]) for r in ROWS]
        both = store.concat(taken)
        assert both.materialize() == ROWS + [ROWS[3], ROWS[0]]

    def test_joint_row_codes_group_equal_rows(self):
        store = TupleStore.from_tuples(ATTRS, ROWS)
        (codes,) = joint_row_codes([store])
        # rows 0 and 2 differ only in c; all four rows are distinct
        assert len(np.unique(codes)) == 4
        dup = TupleStore.from_tuples(ATTRS, ROWS + [ROWS[0]])
        (codes2,) = joint_row_codes([dup])
        assert codes2[0] == codes2[4]

    def test_group_by_first_appearance_order(self):
        gid, first = group_by_first_appearance(
            np.asarray([5, 3, 5, 9, 3], dtype=np.int64)
        )
        assert gid.tolist() == [0, 1, 0, 2, 1]
        assert first.tolist() == [0, 1, 3]

    def test_dummy_rows_survive_round_trip(self):
        store = TupleStore.from_tuples(ATTRS, ROWS).with_dummies(2)
        rows = store.materialize()
        assert rows[:4] == ROWS
        assert all(is_dummy_tuple(t) for t in rows[4:])
        # dummy markers are pairwise distinct (fresh nonces)
        assert rows[4] != rows[5]


# ----------------------------------------------------------------------
# satellite 3a: columnar operators vs the retained tuple-path reference
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_columnar_matches_reference_operators(seed):
    """Over fuzz-generated free-connex instances, the columnar plan
    execution returns exactly the tuple path's result — tuples,
    order, and annotations (dummies included, via ``replace``-free
    comparison on the raw outputs)."""
    inst = generate_instance(seed, 0)
    query = inst.query()
    col = query.run_plain()
    ref = query.run_plain(operators=_reference)
    assert col.attributes == ref.attributes
    assert col.tuples == ref.tuples
    assert col.annotations.tolist() == ref.annotations.tolist()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_columnar_matches_naive_oracle(seed):
    inst = generate_instance(seed, 1)
    query = inst.query()
    assert query.run_plain().semantically_equal(query.run_naive())


# ----------------------------------------------------------------------
# satellite 3b: representation independence of the secure transcript
# ----------------------------------------------------------------------


def _rebuilt_from_columns(rel: AnnotatedRelation) -> AnnotatedRelation:
    """The same relation, ingested column-wise instead of row-wise."""
    cols = [
        Column.from_values([t[i] for t in rel.tuples])
        for i in range(len(rel.attributes))
    ]
    store = TupleStore.from_columns(rel.attributes, cols)
    return AnnotatedRelation(
        rel.attributes, store, rel.annotations, rel.semiring
    )


def _secure_fingerprint(inst, relations):
    from repro.yannakakis import build_plan
    from repro.relalg import find_free_connex_tree

    tree = find_free_connex_tree(inst.hypergraph(), set(inst.output))
    plan = build_plan(tree, inst.output)
    ctx = Context(
        Mode.SIMULATED, SecurityParams(ell=inst.ell), seed=11
    )
    engine = Engine(ctx, TEST_GROUP_BITS)
    inputs = {
        n: SecureRelation.from_annotated(inst.owners[n], relations[n])
        for n in relations
    }
    result, _ = secure_yannakakis(engine, inputs, plan)
    return result, ctx.transcript.fingerprint()


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_ingest_representation_does_not_change_transcript(seed):
    """from_tuples- and from_columns-built inputs are the *same*
    relation; the secure run must agree on every result tuple and on
    every transcript message fingerprint."""
    inst = generate_instance(seed, 2, TINY_CONFIG)
    res_a, fp_a = _secure_fingerprint(inst, inst.relations)
    rebuilt = {
        n: _rebuilt_from_columns(r) for n, r in inst.relations.items()
    }
    res_b, fp_b = _secure_fingerprint(inst, rebuilt)
    assert fp_a == fp_b
    assert res_a.semantically_equal(res_b)


# ----------------------------------------------------------------------
# satellite 2: the honest-engine SQL baseline
# ----------------------------------------------------------------------


class TestSqlBaseline:
    def test_backend_is_available(self):
        assert sql_backend_name() in ("duckdb", "sqlite3")

    def test_matches_yannakakis_on_q3_shape(self):
        ring = IntegerRing(32)
        orders = AnnotatedRelation(
            ("okey", "ckey"), [(1, 10), (2, 10), (3, 20)], [1, 1, 1], ring
        )
        customer = AnnotatedRelation(
            ("ckey",), [(10,), (20,), (30,)], [2, 3, 5], ring
        )
        lineitem = AnnotatedRelation(
            ("okey",), [(1,), (1,), (2,)], [7, 11, 13], ring
        )
        from repro.query import JoinAggregateQuery

        q = (
            JoinAggregateQuery(output=["ckey"])
            .add_relation("orders", orders, owner=ALICE)
            .add_relation("customer", customer, owner=BOB)
            .add_relation("lineitem", lineitem, owner=ALICE)
        )
        sql = run_sql_baseline(q.relations, list(q.output))
        assert sql.result.semantically_equal(q.run_plain())
        assert sql.seconds >= 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_yannakakis_on_fuzz_instances(self, seed):
        inst = generate_instance(seed, 3)
        query = inst.query()
        sql = run_sql_baseline(
            query.relations, list(query.output), ell=inst.ell
        )
        assert sql.result.semantically_equal(query.run_plain())

    def test_dummy_tuples_excluded(self):
        ring = IntegerRing(32)
        store = TupleStore.from_tuples(("a",), [(1,), (2,)]).with_dummies(3)
        rel = AnnotatedRelation(
            ("a",), store, [5, 6, 1, 1, 1], ring
        )
        sql = run_sql_baseline({"R": rel}, ["a"])
        assert sorted(sql.result.tuples) == [(1,), (2,)]
