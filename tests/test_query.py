"""The query frontend: builder API and ownership-aware planner."""

import numpy as np
import pytest

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import JoinAggregateQuery, choose_plan, plan_cost
from repro.relalg import AnnotatedRelation, Hypergraph, IntegerRing

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


def rel(attrs, tuples, annots=None):
    return AnnotatedRelation(attrs, tuples, annots, RING)


def paper_query():
    return (
        JoinAggregateQuery(output=["cls"])
        .add_relation(
            "R1", rel(("p", "coins"), [(1, 20), (2, 50)], [80, 50]),
            owner=ALICE,
        )
        .add_relation(
            "R2",
            rel(
                ("p", "d"), [(1, 10), (1, 11), (2, 10), (3, 10)],
                [100, 30, 200, 70],
            ),
            owner=BOB,
        )
        .add_relation(
            "R3", rel(("d", "cls"), [(10, "resp"), (11, "resp")]),
            owner=ALICE,
        )
    )


class TestBuilder:
    def test_duplicate_relation_rejected(self):
        q = JoinAggregateQuery(output=["a"])
        q.add_relation("R", rel(("a",), [(1,)]))
        with pytest.raises(ValueError):
            q.add_relation("R", rel(("a",), [(1,)]))

    def test_free_connex_detection(self):
        assert paper_query().is_free_connex()
        tri = (
            JoinAggregateQuery(output=["a"])
            .add_relation("R1", rel(("a", "b"), [(1, 2)]))
            .add_relation("R2", rel(("b", "c"), [(2, 3)]))
            .add_relation("R3", rel(("a", "c"), [(1, 3)]))
        )
        assert not tri.is_free_connex()
        with pytest.raises(ValueError):
            tri.plan()

    def test_input_size(self):
        assert paper_query().input_size == 2 + 4 + 2

    def test_plan_cached_until_relations_change(self):
        q = paper_query()
        assert q.plan() is q.plan()

    def test_run_plain_equals_naive(self):
        q = paper_query()
        assert q.run_plain().semantically_equal(q.run_naive())

    def test_run_secure(self):
        q = paper_query()
        engine = Engine(
            Context(Mode.SIMULATED, seed=1), TEST_GROUP_BITS
        )
        result, stats = q.run_secure(engine)
        assert result.semantically_equal(q.run_plain())
        assert stats.total_bytes > 0

    def test_run_secure_shared_keeps_annotations_hidden(self):
        q = paper_query()
        engine = Engine(
            Context(Mode.SIMULATED, seed=2), TEST_GROUP_BITS
        )
        res = q.run_secure_shared(engine)
        expect = q.run_plain().to_dict()
        got = {
            t: int(v)
            for t, v in zip(res.tuples, res.annotations.reconstruct())
            if int(v)
        }
        assert got == expect


class TestPlanner:
    def test_prefers_same_owner_folds(self):
        # Chain R1-R2-R3; R1,R2 same owner.  The planner should avoid a
        # plan whose folds all cross parties.
        h = Hypergraph(
            {"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d")}
        )
        owners = {"R1": ALICE, "R2": ALICE, "R3": BOB}
        plan = choose_plan(h, ("d",), owners)
        assert plan_cost(plan, owners) <= 2

    def test_sizes_weight_the_choice(self):
        h = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        owners = {"R1": ALICE, "R2": BOB}
        small = choose_plan(h, ("b",), owners, {"R1": 1, "R2": 1})
        big = choose_plan(
            h, ("b",), owners, {"R1": 10_000, "R2": 1}
        )
        assert small is not None and big is not None

    def test_output_order_preserved(self):
        h = Hypergraph({"R1": ("a", "b", "c")})
        plan = choose_plan(h, ("c", "a"), {"R1": ALICE})
        assert plan.output == ("c", "a")

    def test_non_free_connex_raises(self):
        h = Hypergraph(
            {"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("a", "c")}
        )
        with pytest.raises(ValueError):
            choose_plan(h, ("a",), {"R1": ALICE, "R2": BOB, "R3": ALICE})

    def test_cheaper_ownership_costs_less_at_runtime(self):
        """The Section 6.5 point, measured end to end: a party holding a
        connected subtree pays less than a fully alternating split."""

        def run(owners):
            q = JoinAggregateQuery(output=["d"])
            rng = np.random.default_rng(0)
            for name, attrs in {
                "R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d"),
            }.items():
                n = 40
                tuples = [
                    tuple(int(v) for v in rng.integers(0, 10, 2))
                    for _ in range(n)
                ]
                q.add_relation(
                    name, rel(attrs, tuples, rng.integers(1, 5, n)),
                    owner=owners[name],
                )
            engine = Engine(
                Context(Mode.SIMULATED, seed=3), TEST_GROUP_BITS
            )
            q.run_secure(engine)
            return engine.ctx.transcript.total_bytes

        connected = run({"R1": BOB, "R2": BOB, "R3": ALICE})
        alternating = run({"R1": ALICE, "R2": BOB, "R3": ALICE})
        assert connected < alternating
