"""Hypergraphs, GYO acyclicity, and join-tree construction."""

import pytest

from repro.relalg import Hypergraph


class TestAcyclicity:
    def test_single_edge(self):
        assert Hypergraph({"R": ("A", "B")}).is_acyclic()

    def test_path_query(self):
        h = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D")})
        assert h.is_acyclic()

    def test_triangle_is_cyclic(self):
        h = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("A", "C")})
        assert not h.is_acyclic()

    def test_triangle_with_covering_edge_is_acyclic(self):
        # alpha-acyclicity: adding the covering hyperedge breaks the cycle
        h = Hypergraph(
            {
                "R1": ("A", "B"),
                "R2": ("B", "C"),
                "R3": ("A", "C"),
                "R4": ("A", "B", "C"),
            }
        )
        assert h.is_acyclic()

    def test_star_query(self):
        h = Hypergraph(
            {
                "F": ("A", "B", "C"),
                "D1": ("A", "X"),
                "D2": ("B", "Y"),
                "D3": ("C", "Z"),
            }
        )
        assert h.is_acyclic()

    def test_cycle_of_four(self):
        h = Hypergraph(
            {
                "R1": ("A", "B"),
                "R2": ("B", "C"),
                "R3": ("C", "D"),
                "R4": ("D", "A"),
            }
        )
        assert not h.is_acyclic()

    def test_duplicate_edges_ok(self):
        h = Hypergraph({"R1": ("A", "B"), "R2": ("A", "B")})
        assert h.is_acyclic()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Hypergraph({})

    def test_tpch_q9_shape_is_acyclic(self):
        h = Hypergraph(
            {
                "part": ("pk",),
                "supplier": ("sk", "nk"),
                "lineitem": ("ok", "pk", "sk"),
                "partsupp": ("pk", "sk"),
                "orders": ("ok", "od"),
            }
        )
        assert h.is_acyclic()


class TestJoinTrees:
    def test_join_tree_of_path(self):
        h = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D")})
        edges = h.join_tree_edges()
        assert edges is not None and len(edges) == 2

    def test_join_tree_of_cyclic_is_none(self):
        h = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("A", "C")})
        assert h.join_tree_edges() is None

    def test_disconnected_components_linked(self):
        h = Hypergraph({"R1": ("A",), "R2": ("B",)})
        edges = h.join_tree_edges()
        assert edges is not None and len(edges) == 1

    def test_single_relation_tree(self):
        assert Hypergraph({"R": ("A",)}).join_tree_edges() == []

    def test_all_join_trees_are_valid(self):
        h = Hypergraph(
            {"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("B", "D")}
        )
        trees = h.all_join_trees()
        assert trees  # at least one
        for edges in trees:
            assert len(edges) == 2

    def test_with_edge(self):
        h = Hypergraph({"R": ("A", "B")})
        h2 = h.with_edge("O", ("A",))
        assert "O" in h2.edges and "O" not in h.edges
        with pytest.raises(ValueError):
            h.with_edge("R", ("A",))
