"""Benes switching networks: routing correctness and size formulas."""

from itertools import permutations

import numpy as np
import pytest

from repro.mpc.waksman import (
    apply_network,
    benes_network,
    pad_permutation,
    switch_count,
)


class TestRouting:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_exhaustive_small(self, n):
        for perm in permutations(range(n)):
            layers = benes_network(list(perm))
            routed = apply_network(layers, list(range(n)))
            # value entering wire i leaves on wire perm[i]
            assert all(routed[perm[i]] == i for i in range(n))

    def test_random_large(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(1, 260))
            perm = list(rng.permutation(n))
            padded = pad_permutation(perm)
            layers = benes_network(padded)
            routed = apply_network(layers, list(range(len(padded))))
            assert all(routed[padded[i]] == i for i in range(len(padded)))

    def test_identity_needs_no_swaps(self):
        layers = benes_network(list(range(8)))
        routed = apply_network(layers, list("abcdefgh"))
        assert routed == list("abcdefgh")

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            benes_network([0, 1, 2])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            benes_network([0, 0, 1, 1])


class TestStructure:
    def test_layers_have_disjoint_wires(self):
        rng = np.random.default_rng(2)
        perm = list(rng.permutation(16))
        for layer in benes_network(perm):
            touched = [w for a, b, _ in layer for w in (a, b)]
            assert len(touched) == len(set(touched))

    def test_depth_is_2logn_minus_1(self):
        for k in (2, 3, 4, 5):
            n = 2**k
            layers = benes_network(list(range(n)))
            assert len(layers) == 2 * k - 1

    def test_switch_count_formula(self):
        # count(n) = n + 2*count(n/2), count(2) = 1
        assert switch_count(2) == 1
        assert switch_count(4) == 6
        assert switch_count(8) == 20
        assert switch_count(16) == 56

    def test_switch_count_matches_network(self):
        for n in (2, 4, 8, 16, 32):
            layers = benes_network(list(range(n)))
            assert sum(len(l) for l in layers) == switch_count(n)

    def test_switch_count_pads_to_power_of_two(self):
        assert switch_count(5) == switch_count(8)
        assert switch_count(1) == 0

    def test_pad_permutation_identity_tail(self):
        padded = pad_permutation([2, 0, 1])
        assert padded == [2, 0, 1, 3]
