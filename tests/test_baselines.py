"""The garbled-circuit baseline: cost model and the runnable circuit."""

import pytest

from repro.baselines import (
    cartesian_gc_cost,
    gc_gate_rate,
    run_cartesian_gc,
    run_nonprivate,
)
from repro.baselines.garbled_baseline import per_combo_and_gates
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import AnnotatedRelation, IntegerRing
from repro.tpch import generate, prepare_q3
from repro.yannakakis import naive_join_aggregate

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


def rel(attrs, tuples):
    return AnnotatedRelation(attrs, tuples, None, RING)


class TestCostModel:
    def test_combos_multiply(self):
        cost = cartesian_gc_cost([10, 20, 30], 2, gate_rate=1e6)
        assert cost.combos == 6000
        assert cost.and_gates == 6000 * per_combo_and_gates(2)

    def test_runs_scale_linearly(self):
        one = cartesian_gc_cost([5, 5], 1, gate_rate=1e6, runs=1)
        fifty = cartesian_gc_cost([5, 5], 1, gate_rate=1e6, runs=50)
        assert fifty.and_gates == 50 * one.and_gates

    def test_polynomial_growth(self):
        # doubling every relation of a 3-way join: 8x the gates
        small = cartesian_gc_cost([10, 10, 10], 2, gate_rate=1e6)
        big = cartesian_gc_cost([20, 20, 20], 2, gate_rate=1e6)
        assert big.and_gates == 8 * small.and_gates

    def test_time_inversely_proportional_to_rate(self):
        slow = cartesian_gc_cost([10, 10], 1, gate_rate=1e3)
        fast = cartesian_gc_cost([10, 10], 1, gate_rate=1e6)
        assert slow.est_seconds == pytest.approx(
            1000 * fast.est_seconds
        )

    def test_gate_rate_measured_positive(self):
        rate = gc_gate_rate()
        assert rate > 100  # even pure Python garbles >100 gates/s


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestRunnableBaseline:
    def test_counts_join_results(self, mode):
        r1 = rel(("a", "b"), [(1, 1), (2, 2), (3, 1)])
        r2 = rel(("b", "c"), [(1, 5), (2, 5), (1, 6)])
        engine = Engine(Context(mode, seed=4), TEST_GROUP_BITS)
        count = run_cartesian_gc(
            engine, {"R1": (r1, ALICE), "R2": (r2, BOB)}
        )
        expect = naive_join_aggregate(
            {"R1": r1, "R2": r2}, []
        ).to_dict()
        assert count == expect.get((), 0)

    def test_three_way(self, mode):
        r1 = rel(("a",), [(1,), (2,)])
        r2 = rel(("a", "b"), [(1, 5), (2, 6)])
        r3 = rel(("b",), [(5,)])
        engine = Engine(Context(mode, seed=5), TEST_GROUP_BITS)
        count = run_cartesian_gc(
            engine,
            {"R1": (r1, ALICE), "R2": (r2, BOB), "R3": (r3, ALICE)},
        )
        assert count == 1

    def test_rejects_non_integer_keys(self, mode):
        r1 = rel(("a",), [("x",)])
        engine = Engine(Context(mode, seed=6), TEST_GROUP_BITS)
        with pytest.raises(TypeError):
            run_cartesian_gc(engine, {"R1": (r1, ALICE)})


class TestBaselineVsSecureYannakakis:
    def test_baseline_loses_by_orders_of_magnitude(self):
        dataset = generate(1)
        query = prepare_q3(dataset)
        ctx = query.make_context(Mode.SIMULATED, seed=1)
        _, stats = query.run_secure(Engine(ctx))
        gc = cartesian_gc_cost(
            query.gc_sizes, query.gc_conditions, gate_rate=gc_gate_rate()
        )
        assert gc.comm_bytes > 1000 * stats.total_bytes
        assert gc.est_seconds > 1000 * stats.seconds


def test_nonprivate_baseline_reports_input_as_comm():
    query = prepare_q3(generate(1))
    res = run_nonprivate(query)
    assert res.comm_bytes == query.effective_bytes
    assert res.seconds < 5
    assert len(res.result) > 0
