"""The oblivious operators (Section 6.1/6.2) against plaintext
semantics, across ownership and annotation regimes."""

from functools import partial

import numpy as np
import pytest

from repro.core import (
    SecureAnnotations,
    SecureRelation,
    is_dummy_tuple,
    oblivious_aggregate,
    oblivious_reduce_join,
    oblivious_semijoin,
    oblivious_support_projection,
)
from repro.mpc import ALICE, BOB, Mode
from repro.relalg import (
    AnnotatedRelation,
    IntegerRing,
    aggregate,
    join,
    semijoin,
    support_projection,
)

from .conftest import make_engine

RING = IntegerRing(32)


mk_engine = partial(make_engine, seed=31)


def secure(owner, rel, engine=None, shared=False):
    sec = SecureRelation.from_annotated(owner, rel)
    if shared:
        assert engine is not None
        sec.annotations = SecureAnnotations.shared(
            engine.share(owner, rel.annotations)
        )
    return sec


def plain_rel(attrs, tuples, annots=None):
    return AnnotatedRelation(attrs, tuples, annots, RING)


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
@pytest.mark.parametrize("owner", [ALICE, BOB])
@pytest.mark.parametrize("shared", [False, True])
class TestObliviousAggregate:
    def test_matches_plaintext(self, mode, owner, shared):
        eng = mk_engine(mode)
        rel = plain_rel(
            ("a", "b"),
            [(1, 10), (2, 20), (1, 30), (3, 40), (1, 50)],
            [5, 6, 7, 8, 9],
        )
        sec = secure(owner, rel, eng, shared)
        out = oblivious_aggregate(eng, sec, ("a",))
        assert len(out) == len(rel)  # size-preserving (padded)
        assert out.owner == owner
        assert out.to_annotated(eng.ctx).semantically_equal(
            aggregate(rel, ("a",))
        )

    def test_support_projection(self, mode, owner, shared):
        eng = mk_engine(mode)
        rel = plain_rel(
            ("a", "b"), [(1, 1), (1, 2), (2, 1), (3, 1)], [0, 4, 0, 6]
        )
        sec = secure(owner, rel, eng, shared)
        out = oblivious_support_projection(eng, sec, ("a",))
        assert len(out) == len(rel)
        assert out.to_annotated(eng.ctx).semantically_equal(
            support_projection(rel, ("a",))
        )


class TestAggregateDetails:
    def test_dummy_padding_positions(self):
        eng = mk_engine()
        rel = plain_rel(("a",), [(1,), (1,), (2,)], [5, 6, 7])
        out = oblivious_aggregate(
            eng, secure(ALICE, rel, eng, True), ("a",)
        )
        dummies = [t for t in out.tuples if is_dummy_tuple(t)]
        assert len(dummies) == 1  # 2 groups out of 3 tuples

    def test_empty_relation(self):
        eng = mk_engine()
        rel = plain_rel(("a", "b"), [])
        out = oblivious_aggregate(eng, secure(BOB, rel), ("b",))
        assert len(out) == 0

    def test_plain_fast_path_is_free(self):
        eng = mk_engine()
        rel = plain_rel(("a",), [(i % 4,) for i in range(50)])
        before = eng.ctx.transcript.total_bytes
        oblivious_aggregate(eng, secure(ALICE, rel), ("a",))
        assert eng.ctx.transcript.total_bytes == before

    def test_scalar_aggregation(self):
        eng = mk_engine()
        rel = plain_rel(("a",), [(1,), (2,)], [10, 20])
        out = oblivious_aggregate(
            eng, secure(ALICE, rel, eng, True), ()
        )
        total = out.annotations.reconstruct().sum() % eng.ctx.modulus
        assert total == 30


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestReduceJoin:
    @pytest.mark.parametrize(
        "owners", [(ALICE, BOB), (BOB, ALICE), (ALICE, ALICE), (BOB, BOB)]
    )
    def test_cross_and_same_owner(self, mode, owners):
        eng = mk_engine(mode)
        parent = plain_rel(
            ("a", "b"), [(1, 1), (2, 2), (3, 3), (4, 4)], [2, 3, 4, 5]
        )
        child = plain_rel(("a",), [(1,), (3,), (9,)], [10, 20, 0])
        p = secure(owners[0], parent, eng, shared=True)
        c = secure(owners[1], child, eng, shared=True)
        out = oblivious_reduce_join(eng, p, c)
        # Same tuples as the parent; only the annotations change.
        assert out.tuples == parent.tuples
        expect = join(parent, child)
        assert out.to_annotated(eng.ctx).semantically_equal(expect)

    def test_plain_payload_fast_path(self, mode):
        eng = mk_engine(mode)
        parent = plain_rel(("a",), [(1,), (2,)], [5, 7])
        child = plain_rel(("a",), [(2,)], [100])
        out = oblivious_reduce_join(
            eng, secure(ALICE, parent), secure(BOB, child)
        )
        assert out.to_annotated(eng.ctx).semantically_equal(
            join(parent, child)
        )

    def test_same_owner_all_plain_stays_plain(self, mode):
        eng = mk_engine(mode)
        parent = plain_rel(("a",), [(1,), (2,)], [5, 7])
        child = plain_rel(("a",), [(1,)], [3])
        out = oblivious_reduce_join(
            eng, secure(ALICE, parent), secure(ALICE, child)
        )
        assert out.annotations.kind == "plain"
        assert out.to_annotated(eng.ctx).semantically_equal(
            join(parent, child)
        )

    def test_scalar_child(self, mode):
        eng = mk_engine(mode)
        parent = plain_rel(("a",), [(1,), (2,)], [5, 7])
        child = AnnotatedRelation((), [(), ()], [3, 4], RING)
        out = oblivious_reduce_join(
            eng,
            secure(ALICE, parent, eng, True),
            secure(BOB, child, eng, True),
        )
        assert list(
            out.annotations.reconstruct()
        ) == [35, 49]

    def test_attr_subset_enforced(self, mode):
        eng = mk_engine(mode)
        parent = plain_rel(("a",), [(1,)])
        child = plain_rel(("z",), [(1,)])
        with pytest.raises(ValueError):
            oblivious_reduce_join(
                eng, secure(ALICE, parent), secure(BOB, child)
            )


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestSemijoin:
    def test_zero_annotates_dangling(self, mode):
        eng = mk_engine(mode)
        target = plain_rel(
            ("a", "b"), [(1, 1), (2, 2), (3, 3)], [5, 6, 7]
        )
        filt = plain_rel(("b", "c"), [(1, 9), (3, 9)], [1, 0])
        t = secure(ALICE, target, eng, shared=True)
        f = secure(BOB, filt, eng, shared=True)
        out = oblivious_semijoin(eng, t, f)
        assert out.tuples == target.tuples
        assert out.to_annotated(eng.ctx).semantically_equal(
            semijoin(target, filt)
        )

    def test_disconnected_filter(self, mode):
        # No shared attributes: the filter acts as a global gate.
        eng = mk_engine(mode)
        target = plain_rel(("a",), [(1,), (2,)], [5, 6])
        filt_on = plain_rel(("z",), [(9,)], [1])
        filt_off = plain_rel(("z",), [(9,)], [0])
        t = secure(ALICE, target, eng, shared=True)
        on = oblivious_semijoin(
            eng, t, secure(BOB, filt_on, eng, shared=True)
        )
        assert list(on.annotations.reconstruct()) == [5, 6]
        off = oblivious_semijoin(
            eng, t, secure(BOB, filt_off, eng, shared=True)
        )
        assert list(off.annotations.reconstruct()) == [0, 0]


class TestOperatorObliviousness:
    def test_aggregate_traffic_value_independent(self):
        def run(annots):
            eng = mk_engine(seed=11)
            rel = plain_rel(
                ("a",), [(i,) for i in range(12)], annots
            )
            oblivious_aggregate(
                eng, secure(ALICE, rel, eng, True), ("a",)
            )
            return eng.ctx.transcript.fingerprint()

        assert run(list(range(12))) == run([0] * 12)

    def test_reduce_join_traffic_value_independent(self):
        def run(parent_keys, child_keys):
            eng = mk_engine(seed=12)
            parent = plain_rel(
                ("a",), [(k,) for k in parent_keys], [1] * len(parent_keys)
            )
            child = plain_rel(
                ("a",), [(k,) for k in child_keys], [1] * len(child_keys)
            )
            oblivious_reduce_join(
                eng,
                secure(ALICE, parent, eng, True),
                secure(BOB, child, eng, True),
            )
            return eng.ctx.transcript.fingerprint()

        # full overlap vs no overlap: identical traffic
        assert run(range(10), range(5)) == run(range(10), range(50, 55))


class TestPreconditionGuards:
    def test_same_owner_duplicate_child_rejected(self):
        eng = mk_engine()
        parent = plain_rel(("a",), [(1,)], [1])
        child = plain_rel(("a",), [(1,), (1,)], [2, 3])
        with pytest.raises(ValueError, match="distinct"):
            oblivious_reduce_join(
                eng,
                secure(ALICE, parent, eng, True),
                secure(ALICE, child, eng, True),
            )

    def test_cross_owner_duplicate_child_rejected(self):
        eng = mk_engine()
        parent = plain_rel(("a",), [(1,)], [1])
        child = plain_rel(("a",), [(1,), (1,)], [2, 3])
        with pytest.raises(ValueError, match="distinct"):
            oblivious_reduce_join(
                eng,
                secure(ALICE, parent, eng, True),
                secure(BOB, child, eng, True),
            )
