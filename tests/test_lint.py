"""Tests for the ``repro lint`` obliviousness static analyzer.

Three layers:

* fixture tests — each rule's good/bad snippets under
  ``tests/lint_fixtures/`` flag (or stay silent) as documented;
* framework tests — suppression accounting, baseline roundtrip +
  stale-entry lifecycle, SARIF output, git-diff scoping, and the full
  run over the real tree staying clean;
* leakage-contract tests — the registry↔docs pin and the plan-level
  audit of TPC-H Q3 under each back-end route;
* mutation tests — injecting a secret-dependent branch into a real
  sharing gadget (OBL001) and stripping the ``@leaks`` contract off
  the linear join entry point (OBL006); both must fire.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.leakage import BACKEND_CONTRACTS, leakage_table
from repro.lint import all_rules, lint_sources, run_lint
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    stale_entries,
    write_baseline,
)
from repro.lint.project import parse_source
from repro.lint.reporters import sarif_report
from repro.lint.runner import git_changed_files

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
RULES = (
    "OBL001",
    "OBL002",
    "OBL003",
    "OBL004",
    "OBL005",
    "OBL006",
    "OBL007",
    "OBL008",
)


def lint_fixture(name, select, path_prefix="repro/mpc"):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    src = parse_source(f"{path_prefix}/{name}", text)
    violations, suppressed = lint_sources([src], select=list(select))
    return violations, suppressed


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_flags(rule):
    violations, _ = lint_fixture(f"{rule.lower()}_bad.py", [rule])
    assert violations, f"{rule} bad fixture produced no findings"
    assert all(v.rule == rule for v in violations)


@pytest.mark.parametrize("rule", RULES)
def test_good_fixture_clean(rule):
    violations, _ = lint_fixture(f"{rule.lower()}_good.py", [rule])
    assert violations == []


def test_obl001_flags_every_bad_gadget():
    """Each function in the OBL001 bad fixture exercises a distinct
    sink (branch, index, loop bound, comprehension filter, share
    attribute) — all five must fire."""
    violations, _ = lint_fixture("obl001_bad.py", ["OBL001"])
    assert len(violations) >= 5


def test_rules_only_fire_in_protocol_dirs():
    violations, _ = lint_fixture(
        "obl001_bad.py", ["OBL001"], path_prefix="repro/bench"
    )
    assert violations == []


_RAW_SEND = (
    "def f(ctx, n):\n"
    '    ctx.transcript.send("alice", n, "raw")\n'
)


def test_obl002_flags_raw_transcript_send_in_runtime():
    """repro/runtime is a protocol dir; unsanctioned modules there may
    not touch the raw transcript either."""
    src = parse_source("repro/runtime/helper.py", _RAW_SEND)
    violations, _ = lint_sources([src], select=["OBL002"])
    assert any("framing layer" in v.message for v in violations)


def test_obl002_sanctioned_channel_impls_exempt():
    """The transcript, the context router and the session framing
    layer are the only modules allowed a raw Transcript.send."""
    for path in (
        "repro/mpc/transcript.py",
        "repro/mpc/context.py",
        "repro/runtime/session.py",
    ):
        src = parse_source(path, _RAW_SEND)
        violations, _ = lint_sources([src], select=["OBL002"])
        assert violations == [], path


# ----------------------------------------------------------------------
# framework: suppressions, baseline, full-tree run
# ----------------------------------------------------------------------

_SUPPRESSIBLE = (
    "import random"
    "  # oblint: disable=OBL003 — fixed-seed public sanity check\n"
)


def test_justified_suppression_is_counted_not_reported():
    src = parse_source("repro/mpc/supp.py", _SUPPRESSIBLE)
    violations, suppressed = lint_sources([src], select=["OBL003"])
    assert violations == []
    assert suppressed == 1


def test_unjustified_suppression_becomes_obl000():
    text = "import random  # oblint: disable=OBL003\n"
    src = parse_source("repro/mpc/supp.py", text)
    violations, suppressed = lint_sources([src], select=["OBL003"])
    assert suppressed == 0
    assert [v.rule for v in violations] == ["OBL000"]
    assert "justification" in violations[0].message


def test_suppression_of_other_rule_does_not_apply():
    text = "import random  # oblint: disable=OBL001 — wrong rule\n"
    src = parse_source("repro/mpc/supp.py", text)
    violations, _ = lint_sources([src], select=["OBL003"])
    assert [v.rule for v in violations] == ["OBL003"]


def test_baseline_roundtrip(tmp_path):
    text = "import random\nimport secrets\n"
    src = parse_source("repro/mpc/base.py", text)
    violations, _ = lint_sources([src], select=["OBL003"])
    assert len(violations) == 2

    path = tmp_path / "baseline.json"
    write_baseline(path, violations)
    counts = load_baseline(path)
    fresh, matched = apply_baseline(violations, counts)
    assert fresh == [] and matched == 2

    # A NEW occurrence of a baselined fingerprint is still reported.
    grown = parse_source("repro/mpc/base.py", text + "import random\n")
    more, _ = lint_sources([grown], select=["OBL003"])
    fresh, matched = apply_baseline(more, counts)
    assert matched == 2
    assert [v.rule for v in fresh] == ["OBL003"]


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_repo_tree_is_lint_clean():
    """The committed tree must pass its own linter with the committed
    baseline — the same gate CI runs."""
    result = run_lint(
        [str(REPO_ROOT / "src")],
        baseline_path=REPO_ROOT / "lint-baseline.json",
        root=REPO_ROOT,
    )
    assert result.ok, "\n".join(
        f"{v.path}:{v.line} {v.rule} {v.message}"
        for v in result.violations
    )
    assert result.files_checked > 50


def test_rule_catalogue_complete():
    codes = {r.code for r in all_rules()}
    assert set(RULES) <= codes


# ----------------------------------------------------------------------
# mutation test: OBL001 catches an injected secret-dependent branch
# ----------------------------------------------------------------------

GADGET = REPO_ROOT / "src" / "repro" / "mpc" / "sharing.py"
_ANCHOR = "    sender = other_party(to)\n"
_MUTATION = (
    "    if sv.reconstruct()[0] > 0:  # MUTATION: secret-dependent\n"
    '        label = label + "/nz"\n'
)


def test_mutation_secret_branch_is_caught():
    pristine = GADGET.read_text(encoding="utf-8")
    src = parse_source("repro/mpc/sharing.py", pristine)
    before, _ = lint_sources([src], select=["OBL001"])
    assert before == [], "pristine gadget must be OBL001-clean"

    assert pristine.count(_ANCHOR) == 1, "mutation anchor moved"
    mutant_text = pristine.replace(_ANCHOR, _ANCHOR + _MUTATION)
    mutant = parse_source("repro/mpc/sharing.py", mutant_text)
    after, _ = lint_sources([mutant], select=["OBL001"])
    assert any(
        v.rule == "OBL001" and "branch" in v.message for v in after
    ), "injected secret-dependent branch was not flagged"


LINEAR_GADGET = REPO_ROOT / "src" / "repro" / "core" / "linear.py"
_LEAKS_DECORATOR = '@leaks("join_pattern:parent")\n'


def test_mutation_stripped_contract_is_caught():
    """Deleting the ``@leaks`` contract off the linear-join entry point
    must trip OBL006 at the ``dh_oprf_match`` call it dominates."""
    pristine = LINEAR_GADGET.read_text(encoding="utf-8")
    src = parse_source("repro/core/linear.py", pristine)
    before, _ = lint_sources([src], select=["OBL006"])
    assert before == [], "pristine linear join must be OBL006-clean"

    assert pristine.count(_LEAKS_DECORATOR) == 1, "contract anchor moved"
    mutant_text = pristine.replace(_LEAKS_DECORATOR, "")
    mutant = parse_source("repro/core/linear.py", mutant_text)
    after, _ = lint_sources([mutant], select=["OBL006"])
    assert any(
        v.rule == "OBL006" and "dh_oprf_match" in v.message for v in after
    ), "stripped @leaks contract was not flagged"


# ----------------------------------------------------------------------
# leakage contracts: registry↔docs pin + plan-level audit
# ----------------------------------------------------------------------


def test_docs_leakage_table_matches_registry():
    """docs/BACKENDS.md embeds the machine-generated contract table;
    editing the registry without regenerating the docs must fail."""
    text = (REPO_ROOT / "docs" / "BACKENDS.md").read_text(encoding="utf-8")
    begin, end = "<!-- leakage-table:begin -->", "<!-- leakage-table:end -->"
    assert begin in text and end in text
    embedded = text.split(begin, 1)[1].split(end, 1)[0].strip()
    assert embedded == leakage_table().strip()


def _q3_plans():
    from repro.exec import compile_plan
    from repro.tpch.datagen import generate
    from repro.tpch.queries import prepare_q3

    q = prepare_q3(generate(1))._build()
    plan, owners = q.plan(), dict(q.owners)
    out = {}
    for backend in ("yannakakis", "linear"):
        routes = q.backend_assignments(backend)
        exec_plan = compile_plan(
            plan, owners, backends=routes, name=f"q3-{backend}"
        )
        out[backend] = (exec_plan, plan, routes, owners)
    return out


def test_q3_plan_audit_pins_backend_leakage():
    """The acceptance pin: all-yannakakis Q3 composes to the empty
    leakage summary; the all-linear route leaks exactly the
    pseudonymised join pattern — nothing more."""
    from repro.exec import audit_plan, audit_routes

    plans = _q3_plans()

    exec_plan, plan, routes, owners = plans["yannakakis"]
    report = audit_plan(exec_plan)
    assert report.summary == frozenset()
    assert report.ok(frozenset())
    assert audit_routes(plan, routes, owners).summary == frozenset()

    exec_plan, plan, routes, owners = plans["linear"]
    report = audit_plan(exec_plan)
    assert report.summary == frozenset({"join_pattern:parent"})
    assert not report.ok(frozenset())
    assert report.ok(frozenset({"join_pattern:parent"}))
    assert audit_routes(plan, routes, owners).summary == frozenset(
        {"join_pattern:parent"}
    )
    # every violation names a concrete dispatched node
    assert all("join_pattern:parent" in line
               for line in report.violations(frozenset()))


def test_plan_audit_unknown_backend_is_violation():
    from repro.exec import audit_plan

    exec_plan, _, _, _ = _q3_plans()["yannakakis"]
    blob = json.loads(exec_plan.dumps())
    for step in blob["steps"]:
        if step["kind"] == "reduce_fold":
            step["backend"] = "mystery"
    from repro.exec import ExecPlan

    mutant = ExecPlan.loads(json.dumps(blob))
    report = audit_plan(mutant)
    assert not report.ok(frozenset({"join_pattern:parent"}))
    assert any("no BACKEND_CONTRACTS entry" in line
               for line in report.violations(frozenset()))


def test_backend_contracts_registry_shape():
    """The registry the whole PR hangs off: closed key set, frozenset
    values drawn from the atom vocabulary."""
    from repro.leakage import ATOMS

    assert set(BACKEND_CONTRACTS) == {"yannakakis", "linear"}
    for atoms in BACKEND_CONTRACTS.values():
        assert isinstance(atoms, frozenset)
        assert atoms <= set(ATOMS)


# ----------------------------------------------------------------------
# baseline lifecycle: stale detection + pruning
# ----------------------------------------------------------------------


def test_stale_baseline_entries_detected_and_pruned(tmp_path):
    text = "import random\nimport secrets\n"
    src = parse_source("repro/mpc/base.py", text)
    violations, _ = lint_sources([src], select=["OBL003"])
    path = tmp_path / "baseline.json"
    write_baseline(path, violations)

    # both findings live: nothing stale, prune is a no-op
    assert stale_entries(path, violations) == []
    assert prune_baseline(path, violations) == (2, 0)

    # fix one finding: its entry goes stale and pruning drops it
    fixed = parse_source("repro/mpc/base.py", "import random\n")
    remaining, _ = lint_sources([fixed], select=["OBL003"])
    stale = stale_entries(path, remaining)
    assert [e["stale"] for e in stale] == [1]
    kept, dropped = prune_baseline(path, remaining)
    assert (kept, dropped) == (1, 1)
    assert stale_entries(path, remaining) == []
    # the surviving entry still absorbs the live finding
    fresh, matched = apply_baseline(remaining, load_baseline(path))
    assert fresh == [] and matched == 1


def test_run_lint_check_baseline_fails_on_stale_entry(tmp_path):
    src_dir = tmp_path / "repro" / "mpc"
    src_dir.mkdir(parents=True)
    (src_dir / "base.py").write_text("import random\nimport secrets\n")
    baseline = tmp_path / "baseline.json"

    result = run_lint([str(tmp_path)], root=tmp_path, select=["OBL003"])
    write_baseline(baseline, result.violations)

    (src_dir / "base.py").write_text("import random\n")
    stale_run = run_lint(
        [str(tmp_path)],
        baseline_path=baseline,
        root=tmp_path,
        select=["OBL003"],
        check_baseline=True,
    )
    assert not stale_run.ok
    assert [v.rule for v in stale_run.violations] == ["OBL000"]
    assert "stale baseline entry" in stale_run.violations[0].message


# ----------------------------------------------------------------------
# reporters: SARIF
# ----------------------------------------------------------------------


def test_sarif_report_shape():
    src = parse_source("repro/mpc/base.py", "import random\n")
    violations, _ = lint_sources([src], select=["OBL003"])
    from repro.lint.violations import LintResult

    result = LintResult(violations=violations, files_checked=1)
    blob = json.loads(sarif_report(result, all_rules()))
    assert blob["version"] == "2.1.0"
    run = blob["runs"][0]
    assert run["tool"]["driver"]["name"] == "oblint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert set(RULES) <= rule_ids
    (res,) = run["results"]
    assert res["ruleId"] == "OBL003"
    assert res["level"] == "error"
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "repro/mpc/base.py"
    assert loc["region"]["startLine"] == 1
    fp = res["partialFingerprints"]["oblint/v1"]
    assert fp == violations[0].fingerprint()


# ----------------------------------------------------------------------
# git-diff scoping (--changed)
# ----------------------------------------------------------------------


def test_git_changed_files_merges_diff_and_untracked(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "b.py").write_text("y = 2\n")
    (tmp_path / "c.txt").write_text("not python\n")
    outputs = {
        "diff": "a.py\nc.txt\ngone.py\n",
        "ls-files": "b.py\na.py\n",
    }

    def runner(argv):
        return outputs["diff" if "diff" in argv else "ls-files"]

    changed = git_changed_files(root=tmp_path, runner=runner)
    # .txt filtered, duplicate a.py collapsed, deleted gone.py skipped
    assert [p.name for p in changed] == ["a.py", "b.py"]


# ----------------------------------------------------------------------
# CLI + typing gate
# ----------------------------------------------------------------------


def _run_cli(*argv):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in RULES:
        assert rule in proc.stdout


def test_cli_plan_audit_roundtrip(tmp_path):
    """`repro lint --plan` on a serialised ExecPlan: the linear route
    fails a zero budget and passes once the atom is allowed."""
    exec_plan, _, _, _ = _q3_plans()["linear"]
    plan_file = tmp_path / "q3-linear.json"
    plan_file.write_text(exec_plan.dumps())

    denied = _run_cli("--plan", str(plan_file))
    assert denied.returncode == 1
    assert "join_pattern:parent" in denied.stdout

    allowed = _run_cli(
        "--plan", str(plan_file), "--allow", "join_pattern:parent"
    )
    assert allowed.returncode == 0, allowed.stdout + allowed.stderr


def test_cli_json_report_on_clean_tree():
    proc = _run_cli("src", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    blob = json.loads(proc.stdout)
    assert blob["violations"] == []


@pytest.mark.skipif(
    shutil.which("mypy") is None,
    reason="mypy not installed (optional [lint] extra)",
)
def test_mypy_strict_gate():
    proc = subprocess.run(
        ["mypy", "--no-error-summary"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
