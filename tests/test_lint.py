"""Tests for the ``repro lint`` obliviousness static analyzer.

Three layers:

* fixture tests — each rule's good/bad snippets under
  ``tests/lint_fixtures/`` flag (or stay silent) as documented;
* framework tests — suppression accounting, baseline roundtrip, and
  the full run over the real tree staying clean;
* a mutation test — injecting a secret-dependent branch into a real
  sharing gadget and asserting OBL001 catches it.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_sources, run_lint
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.project import parse_source

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
RULES = ("OBL001", "OBL002", "OBL003", "OBL004", "OBL005")


def lint_fixture(name, select, path_prefix="repro/mpc"):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    src = parse_source(f"{path_prefix}/{name}", text)
    violations, suppressed = lint_sources([src], select=list(select))
    return violations, suppressed


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_flags(rule):
    violations, _ = lint_fixture(f"{rule.lower()}_bad.py", [rule])
    assert violations, f"{rule} bad fixture produced no findings"
    assert all(v.rule == rule for v in violations)


@pytest.mark.parametrize("rule", RULES)
def test_good_fixture_clean(rule):
    violations, _ = lint_fixture(f"{rule.lower()}_good.py", [rule])
    assert violations == []


def test_obl001_flags_every_bad_gadget():
    """Each function in the OBL001 bad fixture exercises a distinct
    sink (branch, index, loop bound, comprehension filter, share
    attribute) — all five must fire."""
    violations, _ = lint_fixture("obl001_bad.py", ["OBL001"])
    assert len(violations) >= 5


def test_rules_only_fire_in_protocol_dirs():
    violations, _ = lint_fixture(
        "obl001_bad.py", ["OBL001"], path_prefix="repro/bench"
    )
    assert violations == []


_RAW_SEND = (
    "def f(ctx, n):\n"
    '    ctx.transcript.send("alice", n, "raw")\n'
)


def test_obl002_flags_raw_transcript_send_in_runtime():
    """repro/runtime is a protocol dir; unsanctioned modules there may
    not touch the raw transcript either."""
    src = parse_source("repro/runtime/helper.py", _RAW_SEND)
    violations, _ = lint_sources([src], select=["OBL002"])
    assert any("framing layer" in v.message for v in violations)


def test_obl002_sanctioned_channel_impls_exempt():
    """The transcript, the context router and the session framing
    layer are the only modules allowed a raw Transcript.send."""
    for path in (
        "repro/mpc/transcript.py",
        "repro/mpc/context.py",
        "repro/runtime/session.py",
    ):
        src = parse_source(path, _RAW_SEND)
        violations, _ = lint_sources([src], select=["OBL002"])
        assert violations == [], path


# ----------------------------------------------------------------------
# framework: suppressions, baseline, full-tree run
# ----------------------------------------------------------------------

_SUPPRESSIBLE = (
    "import random"
    "  # oblint: disable=OBL003 — fixed-seed public sanity check\n"
)


def test_justified_suppression_is_counted_not_reported():
    src = parse_source("repro/mpc/supp.py", _SUPPRESSIBLE)
    violations, suppressed = lint_sources([src], select=["OBL003"])
    assert violations == []
    assert suppressed == 1


def test_unjustified_suppression_becomes_obl000():
    text = "import random  # oblint: disable=OBL003\n"
    src = parse_source("repro/mpc/supp.py", text)
    violations, suppressed = lint_sources([src], select=["OBL003"])
    assert suppressed == 0
    assert [v.rule for v in violations] == ["OBL000"]
    assert "justification" in violations[0].message


def test_suppression_of_other_rule_does_not_apply():
    text = "import random  # oblint: disable=OBL001 — wrong rule\n"
    src = parse_source("repro/mpc/supp.py", text)
    violations, _ = lint_sources([src], select=["OBL003"])
    assert [v.rule for v in violations] == ["OBL003"]


def test_baseline_roundtrip(tmp_path):
    text = "import random\nimport secrets\n"
    src = parse_source("repro/mpc/base.py", text)
    violations, _ = lint_sources([src], select=["OBL003"])
    assert len(violations) == 2

    path = tmp_path / "baseline.json"
    write_baseline(path, violations)
    counts = load_baseline(path)
    fresh, matched = apply_baseline(violations, counts)
    assert fresh == [] and matched == 2

    # A NEW occurrence of a baselined fingerprint is still reported.
    grown = parse_source("repro/mpc/base.py", text + "import random\n")
    more, _ = lint_sources([grown], select=["OBL003"])
    fresh, matched = apply_baseline(more, counts)
    assert matched == 2
    assert [v.rule for v in fresh] == ["OBL003"]


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_repo_tree_is_lint_clean():
    """The committed tree must pass its own linter with the committed
    baseline — the same gate CI runs."""
    result = run_lint(
        [str(REPO_ROOT / "src")],
        baseline_path=REPO_ROOT / "lint-baseline.json",
        root=REPO_ROOT,
    )
    assert result.ok, "\n".join(
        f"{v.path}:{v.line} {v.rule} {v.message}"
        for v in result.violations
    )
    assert result.files_checked > 50


def test_rule_catalogue_complete():
    codes = {r.code for r in all_rules()}
    assert set(RULES) <= codes


# ----------------------------------------------------------------------
# mutation test: OBL001 catches an injected secret-dependent branch
# ----------------------------------------------------------------------

GADGET = REPO_ROOT / "src" / "repro" / "mpc" / "sharing.py"
_ANCHOR = "    sender = other_party(to)\n"
_MUTATION = (
    "    if sv.reconstruct()[0] > 0:  # MUTATION: secret-dependent\n"
    '        label = label + "/nz"\n'
)


def test_mutation_secret_branch_is_caught():
    pristine = GADGET.read_text(encoding="utf-8")
    src = parse_source("repro/mpc/sharing.py", pristine)
    before, _ = lint_sources([src], select=["OBL001"])
    assert before == [], "pristine gadget must be OBL001-clean"

    assert pristine.count(_ANCHOR) == 1, "mutation anchor moved"
    mutant_text = pristine.replace(_ANCHOR, _ANCHOR + _MUTATION)
    mutant = parse_source("repro/mpc/sharing.py", mutant_text)
    after, _ = lint_sources([mutant], select=["OBL001"])
    assert any(
        v.rule == "OBL001" and "branch" in v.message for v in after
    ), "injected secret-dependent branch was not flagged"


# ----------------------------------------------------------------------
# CLI + typing gate
# ----------------------------------------------------------------------


def _run_cli(*argv):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in RULES:
        assert rule in proc.stdout


def test_cli_json_report_on_clean_tree():
    proc = _run_cli("src", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    blob = json.loads(proc.stdout)
    assert blob["violations"] == []


@pytest.mark.skipif(
    shutil.which("mypy") is None,
    reason="mypy not installed (optional [lint] extra)",
)
def test_mypy_strict_gate():
    proc = subprocess.run(
        ["mypy", "--no-error-summary"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
