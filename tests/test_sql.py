"""The SQL frontend: parsing, compilation, and end-to-end execution."""

import pytest

from repro.core.selection import SelectionPolicy
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import JoinAggregateQuery, SqlError, compile_sql, parse_sql
from repro.relalg import AnnotatedRelation, IntegerRing

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


@pytest.fixture
def tables():
    r1 = AnnotatedRelation(
        ("person", "coinsurance", "state"),
        [("p1", 20, "NY"), ("p2", 50, "CA")],
        None,
        RING,
    )
    r2 = AnnotatedRelation(
        ("person", "disease", "cost"),
        [
            ("p1", "flu", 100),
            ("p1", "cold", 30),
            ("p2", "flu", 200),
            ("p3", "flu", 70),
        ],
        None,
        RING,
    )
    r3 = AnnotatedRelation(
        ("disease", "cls"),
        [("flu", "resp"), ("cold", "resp"), ("mal", "trop")],
        None,
        RING,
    )
    return {"r1": r1, "r2": r2, "r3": r3}


class TestParser:
    def test_basic_shape(self):
        p = parse_sql(
            "SELECT a, SUM(x) FROM t1, t2 WHERE t1.a = t2.a GROUP BY a"
        )
        assert [t for t in p.tables] == ["t1", "t2"]
        assert len(p.conditions) == 1
        assert [str(c) for c in p.group_by] == ["a"]

    def test_count_star(self):
        p = parse_sql("SELECT COUNT(*) FROM t")
        assert p.aggregate is None and p.group_by == []

    def test_arithmetic_expression(self):
        p = parse_sql("SELECT SUM(a * (100 - b) + 2) FROM t")
        assert p.aggregate[0] == "+"

    def test_in_and_comparisons(self):
        p = parse_sql(
            "SELECT COUNT(*) FROM t WHERE a IN (1, 'x') AND b >= 3 "
            "AND c <> 4"
        )
        ops = [c.op for c in p.conditions]
        assert ops == ["in", ">=", "!="]

    def test_case_insensitive_keywords(self):
        parse_sql("select count(*) from t where a = 1")

    def test_requires_aggregate(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t GROUP BY a")

    def test_select_list_must_match_group_by(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a, SUM(x) FROM t GROUP BY b")

    def test_trailing_garbage(self):
        # (``FROM t EXTRA`` is a table alias, so the junk must come
        # after a clause that cannot absorb a bare name.)
        with pytest.raises(SqlError):
            parse_sql("SELECT COUNT(*) FROM t WHERE a = 1 EXTRA")

    def test_tokenizer_rejects_junk(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT COUNT(*) FROM t WHERE a = @")

    def test_negative_integer_literal(self):
        # Regression: '-' used to fail with "expected a literal".
        p = parse_sql("SELECT COUNT(*) FROM t WHERE t.c < -5")
        assert p.conditions[0].right == -5

    def test_negative_literal_in_in_list(self):
        p = parse_sql("SELECT COUNT(*) FROM t WHERE a IN (-1, 2, -3)")
        assert p.conditions[0].right == (-1, 2, -3)

    def test_dangling_minus_still_rejected(self):
        with pytest.raises(SqlError) as err:
            parse_sql("SELECT COUNT(*) FROM t WHERE a = -'x'")
        assert "after '-'" in str(err.value)

    def test_duplicate_from_table_rejected(self):
        # Regression: "FROM t1, t1" used to parse (and later join the
        # relation with itself under one name).
        with pytest.raises(SqlError) as err:
            parse_sql("SELECT COUNT(*) FROM t1, t1")
        assert "aliases" in str(err.value)


class TestCompilation:
    def test_example_11(self, tables):
        q = compile_sql(
            "SELECT cls, SUM(cost) FROM r1, r2, r3 "
            "WHERE r1.person = r2.person AND r2.disease = r3.disease "
            "GROUP BY cls",
            tables,
        )
        assert isinstance(q, JoinAggregateQuery)
        assert q.run_plain().to_dict() == {("resp",): 330}

    def test_secure_execution(self, tables):
        q = compile_sql(
            "SELECT cls, SUM(cost) FROM r1, r2, r3 "
            "WHERE r1.person = r2.person AND r2.disease = r3.disease "
            "GROUP BY cls",
            tables,
            owners={"r1": ALICE, "r2": BOB, "r3": ALICE},
        )
        engine = Engine(Context(Mode.SIMULATED, seed=1), TEST_GROUP_BITS)
        result, _ = q.run_secure(engine)
        assert result.semantically_equal(q.run_plain())

    def test_selection_against_literal(self, tables):
        q = compile_sql(
            "SELECT SUM(cost) FROM r2 WHERE disease = 'flu'", tables
        )
        assert q.run_plain().to_dict() == {(): 370}

    def test_private_selection_keeps_size(self, tables):
        q = compile_sql(
            "SELECT COUNT(*) FROM r2 WHERE cost > 1000", tables
        )
        assert len(q.relations["r2"]) == 4  # dummies retained
        assert q.run_plain().to_dict() == {}

    def test_public_selection_shrinks(self, tables):
        q = compile_sql(
            "SELECT COUNT(*) FROM r2 WHERE disease = 'flu'",
            tables,
            selection_policy=SelectionPolicy.PUBLIC,
        )
        assert len(q.relations["r2"]) == 3

    def test_aggregate_expression(self, tables):
        q = compile_sql(
            "SELECT person, SUM(cost * 2 + 1) FROM r2 GROUP BY person",
            tables,
        )
        # p1: (100*2+1) + (30*2+1) = 262; p2: 401; p3: 141
        assert q.run_plain().to_dict() == {
            ("p1",): 262, ("p2",): 401, ("p3",): 141,
        }

    def test_transitive_join_unification(self, tables):
        # person equated across three conditions collapses to one attr
        q = compile_sql(
            "SELECT COUNT(*) FROM r1, r2 WHERE r1.person = r2.person",
            tables,
        )
        shared = set(q.relations["r1"].attributes) & set(
            q.relations["r2"].attributes
        )
        assert len(shared) == 1

    def test_ambiguous_column_rejected(self, tables):
        with pytest.raises(SqlError):
            compile_sql(
                "SELECT COUNT(*) FROM r1, r2 WHERE person = 'p1'", tables
            )

    def test_unknown_table_and_column(self, tables):
        with pytest.raises(SqlError):
            compile_sql("SELECT COUNT(*) FROM nope", tables)
        with pytest.raises(SqlError):
            compile_sql(
                "SELECT COUNT(*) FROM r1 WHERE r1.ghost = 1", tables
            )

    def test_cross_table_aggregate_rejected(self, tables):
        with pytest.raises(SqlError) as err:
            compile_sql(
                "SELECT SUM(cost * coinsurance) FROM r1, r2 "
                "WHERE r1.person = r2.person",
                tables,
            )
        assert "decompose" in str(err.value)

    def test_non_equality_column_join_rejected(self, tables):
        with pytest.raises(SqlError):
            compile_sql(
                "SELECT COUNT(*) FROM r1, r2 WHERE r1.person < r2.person",
                tables,
            )

    def test_count_query_all_annotations_one(self, tables):
        q = compile_sql(
            "SELECT COUNT(*) FROM r1, r2 WHERE r1.person = r2.person",
            tables,
        )
        assert q.run_plain().to_dict() == {(): 3}

    def test_projection_drops_unused_columns(self, tables):
        q = compile_sql(
            "SELECT cls, COUNT(*) FROM r2, r3 "
            "WHERE r2.disease = r3.disease GROUP BY cls",
            tables,
        )
        # cost and person are irrelevant; r2 keeps only the join attr
        assert len(q.relations["r2"].attributes) == 1

    def test_negative_literal_selection(self, tables):
        q = compile_sql(
            "SELECT SUM(cost) FROM r2 WHERE cost > -50", tables
        )
        assert q.run_plain().to_dict() == {(): 400}

    def test_bounded_policy_with_bounds(self, tables):
        q = compile_sql(
            "SELECT COUNT(*) FROM r2 WHERE disease = 'flu'",
            tables,
            selection_policy=SelectionPolicy.BOUNDED,
            selection_bounds={"r2": 3},
        )
        assert len(q.relations["r2"]) == 3
        assert q.run_plain().to_dict() == {(): 3}


class TestNameCollisions:
    def test_same_column_name_in_two_tables_not_equated(self):
        """Two distinct 'id' columns that are NOT joined must not merge
        into one attribute (that would create a spurious join)."""
        from repro.relalg import AnnotatedRelation, IntegerRing

        ring = IntegerRing(32)
        t1 = AnnotatedRelation(("id", "ref"), [(1, 9), (2, 8)], None, ring)
        t2 = AnnotatedRelation(("id", "v"), [(9, 5), (8, 6)], None, ring)
        q = compile_sql(
            "SELECT SUM(v) FROM t1, t2 WHERE t1.ref = t2.id",
            {"t1": t1, "t2": t2},
        )
        # join on ref=id only: both rows match -> 11
        assert q.run_plain().to_dict() == {(): 11}

    def test_three_way_transitive_equality(self):
        from repro.relalg import AnnotatedRelation, IntegerRing

        ring = IntegerRing(32)
        a = AnnotatedRelation(("x",), [(1,), (2,)], None, ring)
        b = AnnotatedRelation(("y",), [(1,), (3,)], None, ring)
        c = AnnotatedRelation(("z",), [(1,), (4,)], None, ring)
        q = compile_sql(
            "SELECT COUNT(*) FROM a, b, c "
            "WHERE a.x = b.y AND b.y = c.z",
            {"a": a, "b": b, "c": c},
        )
        assert q.run_plain().to_dict() == {(): 1}

    def test_group_by_join_attribute(self):
        from repro.relalg import AnnotatedRelation, IntegerRing

        ring = IntegerRing(32)
        t1 = AnnotatedRelation(("k", "w"), [(1, 2), (1, 3)], [5, 5], ring)
        t2 = AnnotatedRelation(("k",), [(1,)], None, ring)
        q = compile_sql(
            "SELECT t1.k, COUNT(*) FROM t1, t2 WHERE t1.k = t2.k "
            "GROUP BY t1.k",
            {"t1": t1, "t2": t2},
        )
        assert q.run_plain().to_dict() == {(1,): 2}


class TestAliases:
    def test_as_alias_parses(self):
        p = parse_sql("SELECT COUNT(*) FROM t AS a, u b, v")
        assert p.tables == ["a", "b", "v"]
        assert p.sources == {"a": "t", "b": "u", "v": "v"}

    def test_alias_is_effective_name_in_conditions(self):
        p = parse_sql(
            "SELECT COUNT(*) FROM t a, t b WHERE a.x = b.y"
        )
        assert p.tables == ["a", "b"]
        assert p.sources == {"a": "t", "b": "t"}

    def test_duplicate_alias_rejected(self):
        with pytest.raises(SqlError) as err:
            parse_sql("SELECT COUNT(*) FROM t a, u a")
        assert "aliases" in str(err.value)

    def test_alias_colliding_with_table_name_rejected(self):
        with pytest.raises(SqlError) as err:
            parse_sql("SELECT COUNT(*) FROM t, u t")
        assert "aliases" in str(err.value)

    def test_unknown_base_table_reported(self):
        with pytest.raises(SqlError) as err:
            compile_sql("SELECT COUNT(*) FROM nope n", {})
        assert "nope" in str(err.value)

    def test_aliased_single_table(self, tables):
        q = compile_sql(
            "SELECT SUM(cost) FROM r2 AS visits "
            "WHERE visits.disease = 'flu'",
            tables,
        )
        assert q.run_plain().to_dict() == {(): 370}

    def test_self_join_two_paths_plain(self):
        ring = IntegerRing(32)
        edges = AnnotatedRelation(
            ("src", "dst"),
            [(1, 2), (2, 3), (2, 4), (3, 4)],
            None,
            ring,
        )
        q = compile_sql(
            "SELECT COUNT(*) FROM edges a, edges b "
            "WHERE a.dst = b.src",
            {"edges": edges},
        )
        # 2-paths: 1-2-3, 1-2-4, 2-3-4.
        assert q.run_plain().to_dict() == {(): 3}

    def test_self_join_secure_matches_plain(self):
        ring = IntegerRing(32)
        edges = AnnotatedRelation(
            ("src", "dst"),
            [(1, 2), (2, 3), (2, 4), (3, 4)],
            None,
            ring,
        )
        q = compile_sql(
            "SELECT COUNT(*) FROM edges a, edges b "
            "WHERE a.dst = b.src",
            {"edges": edges},
            owners={"a": ALICE, "b": BOB},
        )
        engine = Engine(Context(Mode.SIMULATED, seed=1), TEST_GROUP_BITS)
        result, _ = q.run_secure(engine)
        assert result.semantically_equal(q.run_plain())

    def test_self_join_group_by(self):
        ring = IntegerRing(32)
        edges = AnnotatedRelation(
            ("src", "dst"),
            [(1, 2), (2, 3), (2, 4), (3, 4)],
            None,
            ring,
        )
        q = compile_sql(
            "SELECT a.src, COUNT(*) FROM edges a, edges b "
            "WHERE a.dst = b.src GROUP BY a.src",
            {"edges": edges},
        )
        assert q.run_plain().to_dict() == {(1,): 2, (2,): 1}
