"""Tests for the fault-tolerant session layer (``repro.runtime``).

Four layers:

* unit tests — framing, virtual clock, fault-plan semantics, and the
  kind -> abort-type mapping of every injectable fault;
* invariants — accounting neutrality of the framing overhead, abort
  sanitization (no payload ever escapes through an abort), checkpoint
  rollback of transcript and session counters;
* supervisor — retry convergence, bounded backoff, retries-exhausted
  and non-retryable propagation;
* end-to-end — checkpoint/resume byte-equality on TPC-H Q3, the
  chaos sweep under both scheduler policies (full sweep and REAL-mode
  samples behind the ``slow``/``real`` markers), and the fuzz
  integration (channel faults surface as replayable ``abort``
  failures).
"""

import json

import pytest

from repro.bench.estimator import CostEstimate, session_framing_overhead
from repro.fuzz import TINY_CONFIG, generate_instance
from repro.fuzz.runner import (
    _plan_for,
    _run_secure,
    fuzz,
    replay_file,
    run_differential,
)
from repro.mpc import Context, Engine, Mode
from repro.mpc.params import SecurityParams
from repro.mpc.transcript import ALICE, BOB
from repro.runtime import (
    FRAME_HEADER_BYTES,
    FaultPlan,
    FaultSpec,
    IntegrityAbort,
    PeerCrash,
    ProtocolAbort,
    RetryPolicy,
    SequenceAbort,
    Supervisor,
    TimeoutAbort,
    VirtualClock,
    classify_fault,
    enable_session,
    make_tpch_runner,
    sweep,
)
from repro.runtime.framing import (
    corrupted,
    make_frame,
    truncated,
    verify_frame,
)


def _session(specs=(), **kwargs):
    ctx = Context(Mode.SIMULATED, SecurityParams(ell=32), seed=1)
    session = enable_session(ctx, FaultPlan(list(specs)), **kwargs)
    return ctx, session


def _exchange(ctx, session):
    """A fixed three-message node: ALICE(seq0), BOB(seq0), ALICE(seq1)."""
    session.begin_node(0, "n0")
    ctx.send(ALICE, 16, "a")
    ctx.send(BOB, 16, "b")
    ctx.send(ALICE, 8, "c")
    session.end_node()
    session.finish()


# ----------------------------------------------------------------------
# framing + clock
# ----------------------------------------------------------------------


def test_frame_verifies_clean():
    f = make_frame(0, ALICE, 100, "share")
    assert verify_frame(f) == ""
    assert f.wire_bytes == 100 + FRAME_HEADER_BYTES


def test_corrupted_frame_fails_checksum():
    f = corrupted(make_frame(0, ALICE, 100, "share"))
    assert verify_frame(f) == "checksum-mismatch"


def test_truncated_frame_fails_length():
    f = truncated(make_frame(0, ALICE, 100, "share"))
    assert verify_frame(f) == "length-mismatch"


def test_clock_is_monotone():
    c = VirtualClock()
    c.advance(5)
    c.advance_to(3)  # never goes backwards
    assert c.now == 5
    with pytest.raises(ValueError):
        c.advance(-1)


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("explode")
    with pytest.raises(ValueError):
        FaultSpec("corrupt")  # needs a message_index
    with pytest.raises(ValueError):
        FaultSpec("crash")  # needs a node


def test_fault_plan_json_roundtrip():
    plan = FaultPlan(
        [
            FaultSpec("corrupt", message_index=3),
            FaultSpec("hang", message_index=5, ticks=99),
            FaultSpec("crash", node=2, party=BOB),
            FaultSpec("perturb_share"),
        ]
    )
    again = FaultPlan.from_json(
        json.loads(json.dumps(plan.to_json()))
    )
    assert again.specs == plan.specs


def test_fault_specs_fire_once():
    plan = FaultPlan([FaultSpec("corrupt", message_index=3)])
    assert plan.for_message(3) is not None
    assert plan.for_message(3) is None, "one-shot spec re-fired"
    assert plan.fresh().for_message(3) is not None


# ----------------------------------------------------------------------
# fault kind -> abort type
# ----------------------------------------------------------------------


def _abort_for(specs, **kwargs):
    ctx, session = _session(specs, **kwargs)
    with pytest.raises(ProtocolAbort) as err:
        _exchange(ctx, session)
    return err.value


def test_corrupt_raises_integrity_abort():
    abort = _abort_for([FaultSpec("corrupt", message_index=0)])
    assert isinstance(abort, IntegrityAbort)
    assert abort.reason == "checksum-mismatch"
    assert abort.retryable


def test_truncate_raises_integrity_abort():
    abort = _abort_for([FaultSpec("truncate", message_index=0)])
    assert isinstance(abort, IntegrityAbort)
    assert abort.reason == "length-mismatch"


def test_drop_trips_the_node_barrier():
    abort = _abort_for([FaultSpec("drop", message_index=1)])
    assert isinstance(abort, TimeoutAbort)
    assert abort.reason == "deadline-expired"
    assert abort.party == BOB


def test_duplicate_raises_sequence_replay():
    abort = _abort_for([FaultSpec("duplicate", message_index=0)])
    assert isinstance(abort, SequenceAbort)
    assert abort.reason == "sequence-replay"


def test_reorder_raises_sequence_gap():
    # ALICE's first frame is held; her second (seq 1) overtakes it.
    abort = _abort_for([FaultSpec("reorder", message_index=0)])
    assert isinstance(abort, SequenceAbort)
    assert abort.reason == "sequence-gap"


def test_hang_expires_the_deadline():
    abort = _abort_for(
        [FaultSpec("hang", message_index=1, ticks=100)],
        node_budget=50,
    )
    assert isinstance(abort, TimeoutAbort)
    assert abort.reason == "deadline-expired"


def test_crash_is_terminal():
    abort = _abort_for([FaultSpec("crash", node=0, party=BOB)])
    assert isinstance(abort, PeerCrash)
    assert not abort.retryable
    assert abort.party == BOB


def test_every_abort_is_sanitized():
    for specs in (
        [FaultSpec("corrupt", message_index=0)],
        [FaultSpec("drop", message_index=0)],
        [FaultSpec("duplicate", message_index=0)],
        [FaultSpec("reorder", message_index=0)],
        [FaultSpec("crash", node=0, party=ALICE)],
    ):
        abort = _abort_for(specs)
        assert abort.is_sanitized(), str(abort)
        # Only public channel metadata in the JSON view.
        assert set(abort.to_json()) == {
            "type", "reason", "retryable", "node", "label", "seq",
            "expected", "party", "n_bytes", "tick", "deadline",
            "attempts",
        }


def test_abort_rejects_unknown_reason():
    with pytest.raises(ValueError):
        ProtocolAbort("secret-value-was-42")


# ----------------------------------------------------------------------
# accounting invariants + checkpointing
# ----------------------------------------------------------------------


def test_session_framing_is_accounting_neutral():
    plain = Context(Mode.SIMULATED, SecurityParams(ell=32), seed=1)
    plain.send(ALICE, 16, "a")
    plain.send(BOB, 16, "b")
    plain.send(ALICE, 8, "c")

    ctx, session = _session([])
    _exchange(ctx, session)

    t, p = ctx.transcript, plain.transcript
    assert len(t.messages) == len(p.messages)
    assert t.total_bytes == p.total_bytes + session_framing_overhead(
        len(p.messages)
    )
    # Senders, labels and round structure are untouched.
    assert [(m.sender, m.label) for m in t.messages] == [
        (m.sender, m.label) for m in p.messages
    ]
    assert t.rounds == p.rounds


def test_meter_overhead_can_be_disabled():
    ctx, session = _session([], meter_overhead=False)
    _exchange(ctx, session)
    assert ctx.transcript.total_bytes == 16 + 16 + 8


def test_transcript_rollback():
    ctx = Context(Mode.SIMULATED, SecurityParams(ell=32), seed=1)
    ctx.send(ALICE, 16, "keep")
    mark = ctx.transcript.state()
    ctx.send(BOB, 99, "discard")
    ctx.send(ALICE, 7, "discard")
    ctx.transcript.rollback(mark)
    assert len(ctx.transcript.messages) == 1
    assert ctx.transcript.total_bytes == 16
    assert ctx.transcript.rounds == 1


def test_session_rollback_rewinds_seq_not_wire_index():
    ctx, session = _session([])
    session.begin_node(0)
    ctx.send(ALICE, 16, "a")
    mark = session.state()
    wire_before = session.wire_index
    ctx.send(BOB, 16, "b")
    session.rollback(mark)
    assert session.state() == mark
    assert session.wire_index == wire_before + 1, (
        "the wire index must stay monotone across rollback"
    )


def test_estimator_with_session_part():
    est = CostEstimate()
    est.add("shares", 1000)
    with_sess = est.with_session(n_messages=10)
    assert with_sess.by_part["session_framing"] == (
        10 * FRAME_HEADER_BYTES
    )
    assert with_sess.total == 1000 + 10 * FRAME_HEADER_BYTES
    assert "session_framing" not in est.by_part  # original untouched


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------


class _FakeStep:
    id = 0
    kind = "probe"
    label = "probe"
    restartable = True


def _supervised(specs, policy=None, n_sends=1):
    ctx, session = _session(specs)
    engine = Engine(ctx, 1536)
    supervisor = Supervisor(session, engine, policy=policy)

    def thunk():
        for _ in range(n_sends):
            ctx.send(ALICE, 16, "probe")

    supervisor.run_step(_FakeStep(), {}, thunk)
    return ctx, session


def test_supervisor_retries_to_success():
    ctx, session = _supervised(
        [FaultSpec("corrupt", message_index=0)]
    )
    assert session.n_retries == 1
    assert session.n_aborts == 1
    # The delivered run is exactly one clean message.
    assert len(ctx.transcript.messages) == 1


def test_supervisor_exhausts_retries():
    specs = [
        FaultSpec("corrupt", message_index=i) for i in range(3)
    ]
    with pytest.raises(IntegrityAbort) as err:
        _supervised(specs)
    assert err.value.reason == "retries-exhausted"
    assert err.value.attempts == 3
    assert err.value.is_sanitized()


def test_supervisor_does_not_retry_a_crash():
    with pytest.raises(PeerCrash):
        _supervised([FaultSpec("crash", node=0, party=BOB)])


def test_supervisor_records_events():
    from repro.exec.trace import ExecutionTrace

    ctx, session = _session([FaultSpec("corrupt", message_index=0)])
    engine = Engine(ctx, 1536)
    trace = ExecutionTrace()
    supervisor = Supervisor(session, engine, trace=trace)
    supervisor.run_step(
        _FakeStep(), {}, lambda: ctx.send(ALICE, 16, "probe")
    )
    kinds = [e["type"] for e in trace.events]
    assert kinds == ["abort", "retry"]
    assert trace.events[0]["abort"]["reason"] == "checksum-mismatch"
    assert "events" in trace.to_json()
    # Fault-free traces keep the golden-pinned schema (no events key).
    assert "events" not in ExecutionTrace().to_json()


def test_retry_policy_backoff_is_bounded():
    policy = RetryPolicy(
        max_attempts=10, base_backoff_ticks=8, max_backoff_ticks=64
    )
    assert [policy.backoff(a) for a in (1, 2, 3, 4, 5)] == [
        8, 16, 32, 64, 64,
    ]


# ----------------------------------------------------------------------
# end-to-end: checkpoint/resume equality + chaos sweep
# ----------------------------------------------------------------------


def test_checkpoint_resume_is_byte_equal():
    """The security invariant: a retried run's output and per-section
    accounting equal the unfaulted run's exactly."""
    run = make_tpch_runner("Q3", scale_mb=0.1, seed=7)
    baseline = run(FaultPlan())
    faulted = run(
        FaultPlan([FaultSpec("corrupt", message_index=10)])
    )
    assert faulted.n_retries >= 1
    assert faulted.diff(baseline) == ""


@pytest.mark.parametrize("policy", ["program", "stages"])
def test_chaos_sweep_q3_tiny(policy):
    """Bounded CI sweep: strided message faults of every kind plus a
    crash at every node, under both scheduler policies."""
    run = make_tpch_runner("Q3", scale_mb=0.1, policy=policy)
    report = sweep(run, stride=6)
    assert report.ok, report.summary()
    counts = report.counts
    assert counts["completed-correct"] > 0
    assert counts["clean-abort"] > 0  # the crashes


@pytest.mark.slow
def test_chaos_sweep_q3_tiny_full():
    """The acceptance gate: the full cross product, zero VIOLATIONs."""
    run = make_tpch_runner("Q3", scale_mb=0.1)
    report = sweep(run, stride=1)
    assert report.ok, report.summary()
    assert len(report.outcomes) == (
        6 * report.baseline_messages + report.baseline_nodes
    )


@pytest.mark.real
@pytest.mark.slow
def test_chaos_real_mode_sampled():
    """The same machinery over genuine cryptography: a corrupt frame
    retries to byte-equality, a crash aborts cleanly."""
    run = make_tpch_runner("Q3", scale_mb=0.1, real=True)
    baseline = run(FaultPlan())
    retried = classify_fault(
        run, baseline, FaultSpec("corrupt", message_index=5)
    )
    assert retried.classification == "completed-correct"
    assert retried.retried
    crashed = classify_fault(
        run, baseline,
        FaultSpec("crash", node=baseline.nodes_seen[0], party=BOB),
    )
    assert crashed.classification == "clean-abort"


@pytest.mark.real
@pytest.mark.slow
def test_real_vs_sim_parity_with_session():
    """Enabling the session must not disturb REAL-vs-SIM transcript
    identity (fingerprints include the framed sizes on both sides)."""
    inst = generate_instance(0, 0, TINY_CONFIG)
    plan = _plan_for(inst)
    fingerprints = {}
    for mode in (Mode.SIMULATED, Mode.REAL):
        _, ctx = _run_secure(
            inst, plan, mode, "program", fault=FaultPlan()
        )
        fingerprints[mode] = ctx.transcript.fingerprint()
    assert fingerprints[Mode.SIMULATED] == fingerprints[Mode.REAL]


# ----------------------------------------------------------------------
# fuzz integration
# ----------------------------------------------------------------------


def test_fuzz_channel_fault_surfaces_as_abort():
    inst = generate_instance(0, 0)
    plan = FaultPlan([FaultSpec("corrupt", message_index=3)])
    failures = run_differential(inst, fault=plan)
    assert failures
    assert {f.kind for f in failures} == {"abort"}
    assert {f.exc_type for f in failures} == {"IntegrityAbort"}
    assert all(f.fault == plan.to_json() for f in failures)


def test_fuzz_faulted_failure_replays_identically(tmp_path):
    plan = FaultPlan([FaultSpec("truncate", message_index=3)])
    report = fuzz(
        0, 1, real_every=0, audit=False, fault=plan,
        save_failures_to=str(tmp_path),
    )
    assert report.failures
    saved = sorted(tmp_path.glob("fail_abort_*.json"))
    assert saved
    blob = json.loads(saved[0].read_text())
    assert blob["failure"]["fault"] == plan.to_json()
    replayed = replay_file(str(saved[0]), audit=False)
    assert replayed, "replay must reproduce the abort"
    assert {f.exc_type for f in replayed} == {"IntegrityAbort"}
