"""Back-end selection: estimator boundaries, routing, and trace pins.

The PR-8 satellite battery for the dual join back-end: the analytic
estimator must prefer each back-end where it actually wins (and break
ties deterministically), ``route_backends`` must translate policies
into per-node maps, the scheduler must record its (deterministic)
choices in the execution trace, and a linear-routed run must meter
exactly what the estimator predicted.
"""

import numpy as np
import pytest

from repro.bench.estimator import (
    BACKENDS,
    DEFAULT_PARAMS,
    _Estimator,
    estimate_node_costs,
    estimate_query_cost,
)
from repro.exec import ExecutionTrace
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import (
    BACKEND_POLICIES,
    JoinAggregateQuery,
    route_backends,
)
from repro.relalg import AnnotatedRelation, IntegerRing

from .conftest import TEST_GROUP_BITS, make_engine

RING = IntegerRing(32)


def node_cost(m, n, backend, same_owner=False, child_plain=True):
    """Marginal fold-node cost (child aggregation + reduce-join) as
    :func:`estimate_node_costs` computes it."""
    e = _Estimator(DEFAULT_PARAMS, 2048)
    e._ot_base_charged = {False: True, True: True}
    e.aggregate(n, child_plain)
    e.reduce_join(m, n, same_owner, child_plain, True, backend=backend)
    return e.est.total


def two_relation_query(n1, n2, owners=(ALICE, BOB), key_range=8, seed=0):
    """r1(a,b) ⋈ r2(b,c), SUM over r2's annotations, output ``b``."""
    rng = np.random.default_rng(seed)
    r1 = AnnotatedRelation(
        ("a", "b"),
        [(int(x), int(y)) for x, y in rng.integers(0, key_range, (n1, 2))],
        rng.integers(1, 9, n1),
        RING,
    )
    r2 = AnnotatedRelation(
        ("b", "c"),
        [(int(x), int(y)) for x, y in rng.integers(0, key_range, (n2, 2))],
        rng.integers(1, 9, n2),
        RING,
    )
    q = JoinAggregateQuery(output=("b",))
    q.add_relation("r1", r1, owners[0])
    q.add_relation("r2", r2, owners[1])
    return q


def chain_query():
    """r1(24) -- r2(4) -- r3(512): one node shape per back-end winner,
    so ``auto`` routes a genuinely mixed plan."""
    rng = np.random.default_rng(3)
    specs = [
        ("r1", ("a", "b"), 24, ALICE),
        ("r2", ("b", "c"), 4, BOB),
        ("r3", ("c", "d"), 512, ALICE),
    ]
    q = JoinAggregateQuery(output=("b",))
    for name, attrs, n, owner in specs:
        rel = AnnotatedRelation(
            attrs,
            [(int(x), int(y)) for x, y in rng.integers(0, 6, (n, 2))],
            rng.integers(1, 9, n),
            RING,
        )
        q.add_relation(name, rel, owner)
    return q


class TestEstimatorBoundary:
    """Each back-end must win somewhere, and ties must be ties."""

    def test_linear_wins_square_shapes(self):
        # Balanced cross-owner nodes: DH-OPRF's O(m+n) group elements
        # beat the PSI's per-bin garbled circuits by >10x.
        for m, n in [(16, 16), (24, 24), (64, 64)]:
            assert node_cost(m, n, "linear") < node_cost(m, n, "yannakakis")

    def test_yannakakis_wins_tiny_parent_large_plain_child(self):
        # Few cuckoo bins (parent side) keep the PSI cheap, while the
        # linear path pays a child-sized share + OEP regardless.
        for m, n in [(4, 256), (4, 512), (8, 512)]:
            assert node_cost(m, n, "yannakakis") < node_cost(m, n, "linear")

    def test_same_owner_nodes_are_exact_ties(self):
        # Same-owner folds never reach the PSI/DH-OPRF dispatch, so the
        # two back-ends price (and execute) identically.
        for m, n in [(4, 256), (24, 24)]:
            assert node_cost(m, n, "yannakakis", same_owner=True) == (
                node_cost(m, n, "linear", same_owner=True)
            )

    def test_node_costs_cover_both_backends(self):
        q = two_relation_query(24, 24)
        costs = estimate_node_costs(
            q.plan(), {n: len(r) for n, r in q.relations.items()}, q.owners
        )
        assert costs  # at least one fold/semijoin node
        for per_backend in costs.values():
            assert sorted(per_backend) == sorted(BACKENDS)


class TestRouting:
    def test_forced_policies_are_uniform(self):
        q = two_relation_query(24, 24)
        for concrete in BACKENDS:
            routes = q.backend_assignments(concrete)
            assert routes and set(routes.values()) == {concrete}

    def test_auto_picks_linear_on_square_cross_owner(self):
        q = two_relation_query(24, 24)
        assert "linear" in q.backend_assignments("auto").values()

    def test_auto_tie_breaks_to_yannakakis(self):
        # Same-owner everywhere -> every node is an exact tie -> the
        # paper's protocol wins the tie deterministically.
        q = two_relation_query(24, 24, owners=(ALICE, ALICE))
        routes = q.backend_assignments("auto")
        assert routes and set(routes.values()) == {"yannakakis"}

    def test_auto_is_deterministic(self):
        q = two_relation_query(24, 24)
        assert q.backend_assignments("auto") == q.backend_assignments("auto")

    def test_mixed_plan_exists(self):
        # One node shape per winner (see TestEstimatorBoundary) in a
        # single chain query -> auto routes a genuinely mixed plan.
        q = chain_query()
        routes = q.backend_assignments("auto")
        assert set(routes.values()) == {"yannakakis", "linear"}
        # ... and the mixed plan still computes the right answer.
        engine = make_engine(seed=11)
        engine.backend = "auto"
        result, _ = q.run_secure(engine)
        assert result.semantically_equal(q.run_plain())

    def test_route_backends_rejects_unknown_policy(self):
        q = two_relation_query(8, 8)
        with pytest.raises(ValueError):
            route_backends(
                q.plan(),
                {n: len(r) for n, r in q.relations.items()},
                q.owners,
                backend="bogus",
            )

    def test_set_backend_validates(self):
        q = two_relation_query(8, 8)
        for policy in BACKEND_POLICIES:
            assert q.set_backend(policy) is q
        with pytest.raises(ValueError):
            q.set_backend("bogus")

    def test_engine_override_beats_query_setting(self):
        q = two_relation_query(24, 24).set_backend("yannakakis")
        engine = make_engine(seed=1)
        engine.backend = "linear"
        assert set(q._effective_backends(engine).values()) == {"linear"}
        engine.backend = None
        assert set(q._effective_backends(engine).values()) == {"yannakakis"}


@pytest.mark.parametrize("backend", ["yannakakis", "linear", "auto"])
class TestCorrectness:
    def test_cross_owner_matches_plaintext(self, backend):
        q = two_relation_query(20, 15, seed=7).set_backend(backend)
        result, _ = q.run_secure(make_engine(seed=7))
        assert result.semantically_equal(q.run_plain())

    def test_reverse_ownership(self, backend):
        q = two_relation_query(
            12, 18, owners=(BOB, ALICE), seed=9
        ).set_backend(backend)
        result, _ = q.run_secure(make_engine(seed=9))
        assert result.semantically_equal(q.run_plain())

    def test_empty_child(self, backend):
        q = two_relation_query(10, 0, seed=2).set_backend(backend)
        result, _ = q.run_secure(make_engine(seed=2))
        assert result.semantically_equal(q.run_plain())

    @pytest.mark.real
    def test_real_mode_small(self, backend):
        q = two_relation_query(6, 5, seed=4).set_backend(backend)
        result, _ = q.run_secure(make_engine(Mode.REAL, seed=4))
        assert result.semantically_equal(q.run_plain())


class TestBackendsDiffer:
    def test_transcripts_actually_differ(self):
        """The two back-ends are distinct protocols: same results,
        different transcripts (message labels disjoint on the join)."""
        labels = {}
        for backend in BACKENDS:
            q = two_relation_query(16, 16, seed=5).set_backend(backend)
            engine = make_engine(seed=5)
            q.run_secure(engine)
            labels[backend] = {
                m.label for m in engine.ctx.transcript.messages
            }
        assert any(
            "dhoprf" in lbl for lbl in labels["linear"]
        ), labels["linear"]
        assert not any(
            "dhoprf" in lbl for lbl in labels["yannakakis"]
        )


class TestTracePin:
    def run_traced(self, q, backend):
        tracer = ExecutionTrace()
        engine = Engine(
            Context(Mode.SIMULATED, seed=13),
            TEST_GROUP_BITS,
            tracer=tracer,
            exec_policy="program",
        )
        engine.backend = backend
        q.run_secure(engine)
        return tracer.to_json()

    def test_trace_records_backend_and_estimate(self):
        q = two_relation_query(24, 24, seed=6)
        blob = self.run_traced(q, "auto")
        routed = {
            n["label"]: n
            for n in blob["nodes"]
            if "backend" in n
        }
        assert routed, "no fold/semijoin node carried a backend"
        # The trace's per-node choices are exactly the planner's.
        expected = q.backend_assignments("auto")
        assert {
            lbl: n["backend"] for lbl, n in routed.items()
        } == expected
        for n in routed.values():
            assert n["est_bytes"] >= 0

    def test_trace_shows_mixed_backend_plan(self):
        # Acceptance pin: a traced auto run whose nodes carry BOTH
        # back-ends, with the choice made by the estimator.
        q = chain_query()
        blob = self.run_traced(q, "auto")
        chosen = {
            n["label"]: n["backend"]
            for n in blob["nodes"]
            if "backend" in n
        }
        assert set(chosen.values()) == {"yannakakis", "linear"}
        assert chosen == q.backend_assignments("auto")

    def test_trace_choice_is_deterministic(self):
        q = two_relation_query(24, 24, seed=6)
        pick = lambda blob: [  # noqa: E731
            (n["label"], n["backend"])
            for n in blob["nodes"]
            if "backend" in n
        ]
        assert pick(self.run_traced(q, "auto")) == pick(
            self.run_traced(q, "auto")
        )


class TestEstimateExactness:
    def test_linear_route_is_byte_exact(self):
        q = two_relation_query(24, 24, seed=8).set_backend("linear")
        engine = make_engine(seed=8)
        result, stats = q.run_secure(engine)
        est = estimate_query_cost(
            q, out_size=len(result), group_bits=TEST_GROUP_BITS
        )
        assert est.total == stats.total_bytes

    def test_auto_route_is_byte_exact(self):
        q = two_relation_query(24, 24, seed=8).set_backend("auto")
        engine = make_engine(seed=8)
        result, stats = q.run_secure(engine)
        est = estimate_query_cost(
            q, out_size=len(result), group_bits=TEST_GROUP_BITS
        )
        assert est.total == stats.total_bytes
