"""End-to-end secure Yannakakis: randomized equivalence with the
plaintext algorithm, every ownership split, and whole-protocol
obliviousness."""

import numpy as np
import pytest

from repro.core import SecureRelation, secure_yannakakis
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import build_plan, naive_join_aggregate

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


def run_secure(rels, owners, output, mode, seed=42):
    h = Hypergraph({n: r.attributes for n, r in rels.items()})
    tree = find_free_connex_tree(h, set(output))
    plan = build_plan(tree, tuple(output))
    ctx = Context(mode, seed=seed)
    engine = Engine(ctx, TEST_GROUP_BITS)
    sec = {
        n: SecureRelation.from_annotated(owners[n], rels[n])
        for n in rels
    }
    result, stats = secure_yannakakis(engine, sec, plan)
    return result, stats, ctx


def example_11():
    r1 = AnnotatedRelation(
        ("person", "coins"), [("p1", 20), ("p2", 50)], [80, 50], RING
    )
    r2 = AnnotatedRelation(
        ("person", "disease"),
        [("p1", "flu"), ("p1", "cold"), ("p2", "flu"), ("p3", "flu")],
        [100, 30, 200, 70],
        RING,
    )
    r3 = AnnotatedRelation(
        ("disease", "cls"),
        [("flu", "resp"), ("cold", "resp"), ("mal", "trop")],
        None,
        RING,
    )
    return {"R1": r1, "R2": r2, "R3": r3}


OWNER_SPLITS = [
    {"R1": ALICE, "R2": BOB, "R3": ALICE},
    {"R1": BOB, "R2": ALICE, "R3": BOB},
    {"R1": ALICE, "R2": ALICE, "R3": ALICE},
    {"R1": BOB, "R2": BOB, "R3": BOB},
    {"R1": ALICE, "R2": ALICE, "R3": BOB},
]


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
@pytest.mark.parametrize("owners", OWNER_SPLITS)
def test_example_11_all_splits(mode, owners):
    rels = example_11()
    expect = naive_join_aggregate(rels, ["cls"])
    result, stats, _ = run_secure(rels, owners, ("cls",), mode)
    assert result.semantically_equal(expect)
    assert stats.total_bytes > 0 or all(
        o == ALICE for o in owners.values()
    )


SCHEMAS = {
    "chain": {"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d")},
    "star": {"F": ("a", "b"), "D1": ("a", "x"), "D2": ("b", "y")},
    "two": {"R1": ("a", "b"), "R2": ("b", "c")},
}
OUTPUTS = {
    "chain": [("a",), ("b", "c"), ()],
    "star": [("a", "b"), ("x",)],
    "two": [("b",), ("a", "b"), ()],
}


@pytest.mark.parametrize("shape", sorted(SCHEMAS))
def test_random_queries_simulated(shape):
    schema = SCHEMAS[shape]
    rng = np.random.default_rng(abs(hash(shape)) % 2**31)
    names = sorted(schema)
    for output in OUTPUTS[shape]:
        for trial in range(3):
            rels = {}
            for name, attrs in schema.items():
                n = int(rng.integers(1, 10))
                tuples = [
                    tuple(int(v) for v in rng.integers(0, 4, len(attrs)))
                    for _ in range(n)
                ]
                rels[name] = AnnotatedRelation(
                    attrs, tuples, rng.integers(0, 50, n), RING
                )
            owners = {
                n: (ALICE if i % 2 == 0 else BOB)
                for i, n in enumerate(names)
            }
            expect = naive_join_aggregate(rels, list(output))
            result, _, _ = run_secure(
                rels, owners, output, Mode.SIMULATED, seed=trial
            )
            assert result.semantically_equal(expect), (
                shape, output, trial,
                result.to_dict(), expect.to_dict(),
            )


@pytest.mark.real
def test_real_mode_two_relation_query():
    rng = np.random.default_rng(5)
    r1 = AnnotatedRelation(
        ("a", "b"),
        [(int(x), int(y)) for x, y in rng.integers(0, 3, (6, 2))],
        rng.integers(0, 9, 6),
        RING,
    )
    r2 = AnnotatedRelation(
        ("b", "c"),
        [(int(x), int(y)) for x, y in rng.integers(0, 3, (5, 2))],
        rng.integers(0, 9, 5),
        RING,
    )
    rels = {"R1": r1, "R2": r2}
    expect = naive_join_aggregate(rels, ["b"])
    result, _, _ = run_secure(
        rels, {"R1": ALICE, "R2": BOB}, ("b",), Mode.REAL
    )
    assert result.semantically_equal(expect)


class TestProtocolObliviousness:
    def test_transcript_depends_only_on_shape(self):
        """Same relation sizes, same plan, same OUT — different values
        and different intermediate (hidden!) join sizes."""

        def run(r2_keys):
            r1 = AnnotatedRelation(
                ("a", "b"), [(i, i) for i in range(8)],
                [1] * 8, RING,
            )
            # Both variants produce OUT = 0 (annotations kill results)
            r2 = AnnotatedRelation(
                ("b", "c"), [(k, 0) for k in r2_keys], [0] * 8, RING
            )
            result, _, ctx = run_secure(
                {"R1": r1, "R2": r2},
                {"R1": ALICE, "R2": BOB},
                ("a",),
                Mode.SIMULATED,
                seed=9,
            )
            assert len(result) == 0
            return ctx.transcript.fingerprint()

        # r2 joins everything vs nothing — the *intermediate* join sizes
        # differ wildly, but the transcript must not.
        assert run(list(range(8))) == run(list(range(100, 108)))

    def test_rounds_independent_of_data_size(self):
        """Round count depends on the query, not the data (Section 1.2)."""

        def rounds(n):
            rng = np.random.default_rng(1)
            r1 = AnnotatedRelation(
                ("a", "b"),
                [(int(i), int(i % 3)) for i in range(n)],
                rng.integers(1, 5, n),
                RING,
            )
            r2 = AnnotatedRelation(
                ("b",), [(0,), (1,), (2,)], [1, 1, 1], RING
            )
            _, _, ctx = run_secure(
                {"R1": r1, "R2": r2},
                {"R1": ALICE, "R2": BOB},
                ("a", "b"),
                Mode.SIMULATED,
            )
            return ctx.transcript.rounds

        assert rounds(8) == rounds(64)


def test_whole_protocol_byte_parity_across_modes():
    """REAL and SIMULATED runs of the same query charge identical bytes
    (with the production 2048-bit OT group)."""
    rels = example_11()

    def run(mode):
        h = Hypergraph({n: r.attributes for n, r in rels.items()})
        tree = find_free_connex_tree(h, {"cls"})
        plan = build_plan(tree, ("cls",))
        ctx = Context(mode, seed=77)
        engine = Engine(ctx, 2048)
        sec = {
            n: SecureRelation.from_annotated(o, rels[n])
            for n, o in OWNER_SPLITS[0].items()
        }
        secure_yannakakis(engine, sec, plan)
        return ctx.transcript.total_bytes

    assert run(Mode.REAL) == run(Mode.SIMULATED)


def test_stats_report_phases():
    rels = example_11()
    result, stats, ctx = run_secure(
        rels, OWNER_SPLITS[0], ("cls",), Mode.SIMULATED
    )
    assert stats.total_bytes == ctx.transcript.total_bytes
    assert "reduce" in stats.bytes_by_phase
