"""The differential fuzzer and obliviousness auditor themselves.

These tests pin the harness's own guarantees: deterministic instance
generation, structure-preserving twin construction, a green bounded
campaign, corpus replay, and — crucially — that an injected fault IS
detected (a differential oracle that can't fail is worthless).
"""

import json

import pytest

from repro.fuzz import (
    TINY_CONFIG,
    QueryInstance,
    check_instance,
    fuzz,
    generate_instance,
    iter_corpus,
    minimize_instance,
    perturb_one_share,
    replay_file,
    run_differential,
    save_failure,
    value_disjoint_twin,
)
from repro.mpc import Mode
from repro.relalg.join_tree import is_free_connex


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------


def test_generator_is_deterministic():
    for i in range(12):
        a = generate_instance(3, i)
        b = generate_instance(3, i)
        assert a.to_json() == b.to_json()
    # Different indices give different instances.
    assert generate_instance(3, 0).to_json() != generate_instance(
        3, 1
    ).to_json()


def test_generated_instances_are_free_connex():
    for i in range(25):
        inst = generate_instance(11, i)
        assert is_free_connex(inst.hypergraph(), set(inst.output)), (
            inst.describe()
        )


def test_instance_json_roundtrip():
    inst = generate_instance(5, 2)
    back = QueryInstance.from_json(inst.to_json())
    assert back.to_json() == inst.to_json()
    assert back.seed == inst.seed


def test_value_disjoint_twin_structure():
    inst = generate_instance(7, 3)
    twin = value_disjoint_twin(inst)
    assert set(twin.relations) == set(inst.relations)
    for name, rel in inst.relations.items():
        trel = twin.relations[name]
        assert trel.attributes == rel.attributes
        assert len(trel) == len(rel)
        # Attribute values are disjoint from the originals.
        orig = {v for t in rel.tuples for v in t}
        new = {v for t in trel.tuples for v in t}
        assert orig.isdisjoint(new)
        # Annotation zero-pattern is preserved (the only value property
        # the transcript may legitimately depend on).
        assert [bool(a) for a in rel.annotations] == [
            bool(a) for a in trel.annotations
        ]


# ----------------------------------------------------------------------
# differential + audit
# ----------------------------------------------------------------------


def test_differential_clean_instances():
    for i in range(5):
        inst = generate_instance(0, i)
        assert run_differential(inst) == []


def test_check_instance_includes_audit():
    inst = generate_instance(0, 2)
    assert check_instance(inst, audit=True) == []


@pytest.mark.real
@pytest.mark.slow
def test_differential_real_mode_tiny():
    inst = generate_instance(0, 0, TINY_CONFIG)
    assert run_differential(inst, mode=Mode.REAL) == []


def test_injected_fault_is_caught_and_replayable(tmp_path):
    report = fuzz(
        0, 8, real_every=0, audit=False, fault=perturb_one_share,
        save_failures_to=str(tmp_path),
    )
    assert report.failures, "a perturbed share must not go unnoticed"
    f = report.failures[0]
    assert f.kind == "mismatch"
    assert "--seed 0" in f.replay_hint()
    # The failure was saved as a replayable file with the instance.
    saved = list(tmp_path.glob("fail_*.json"))
    assert saved
    blob = json.loads(saved[0].read_text())
    assert blob["failure"]["kind"] == "mismatch"
    assert "relations" in blob["instance"]
    # Replaying the saved file WITHOUT the fault passes: the instance
    # itself is healthy, the perturbation was the bug.
    assert replay_file(str(saved[0])) == []


def test_minimizer_shrinks_under_fault():
    inst = generate_instance(0, 4)

    def still_fails(candidate):
        return any(
            f.kind == "mismatch"
            for f in run_differential(
                candidate, policies=("program",),
                fault=perturb_one_share,
            )
        )

    assert still_fails(inst)
    small = minimize_instance(inst, still_fails)
    assert still_fails(small)
    n_before = sum(len(r) for r in inst.relations.values())
    n_after = sum(len(r) for r in small.relations.values())
    assert n_after <= n_before


# ----------------------------------------------------------------------
# campaign + corpus
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_bounded_campaign_is_green():
    report = fuzz(0, 10, real_every=5)
    assert report.ok, report.summary()
    assert report.iterations == 10
    assert report.real_iterations == 2
    assert report.audits == 10


def test_corpus_replays_clean():
    # replay_file (not bare check_instance): corpus entries without a
    # persisted back-end replay under "both", so every seeded edge
    # case exercises the cross-protocol oracle.
    entries = list(iter_corpus())
    assert len(entries) >= 5, "seed corpus went missing"
    for path, inst in entries:
        assert replay_file(str(path)) == [], path.name


def test_save_failure_roundtrip(tmp_path):
    from repro.fuzz import FuzzFailure

    inst = generate_instance(0, 1)
    failure = FuzzFailure(
        "mismatch", inst.seed, "synthetic", policy="program",
        instance=inst,
    )
    path = save_failure(failure, str(tmp_path))
    assert replay_file(str(path)) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_fuzz_smoke(capsys):
    from repro.cli import main

    rc = main(
        ["fuzz", "--seed", "0", "--iterations", "2", "--real-every", "0"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK: 2 instances" in out


def test_cli_fuzz_inject_fault_self_test(capsys):
    from repro.cli import main

    rc = main(
        [
            "fuzz", "--seed", "0", "--iterations", "8",
            "--inject-fault", "--no-audit", "--real-every", "0",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "caught and reported" in out
    assert "replay: repro fuzz --seed 0" in out


def test_cli_fuzz_corpus(capsys):
    from repro.cli import main

    rc = main(["fuzz", "--corpus"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 failures" in out


def test_leakage_audit_sweep_is_clean():
    """Acceptance sweep: across 50 generated instances, every
    back-end's routed plan composes to a leakage summary within its
    documented model — statically, without running the protocol."""
    from repro.fuzz import audit_leakage

    for i in range(50):
        inst = generate_instance(900, i, TINY_CONFIG)
        for backend in ("yannakakis", "linear", "auto"):
            assert audit_leakage(inst, backend=backend) == [], (
                f"instance {i} backend {backend}"
            )
