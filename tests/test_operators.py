"""Plaintext annotated relational algebra: unit and property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relalg import (
    AnnotatedRelation,
    IntegerRing,
    aggregate,
    join,
    map_annotations,
    select,
    select_with_dummies,
    semijoin,
    support_projection,
)

RING = IntegerRing(16)


def rel(attrs, tuples, annots=None):
    return AnnotatedRelation(attrs, tuples, annots, RING)


class TestAggregate:
    def test_groups_and_sums(self):
        r = rel(("a", "b"), [(1, 10), (1, 20), (2, 30)], [5, 7, 9])
        out = aggregate(r, ("a",))
        assert out.to_dict() == {(1,): 12, (2,): 9}

    def test_empty_group_by_gives_scalar(self):
        r = rel(("a",), [(1,), (2,)], [5, 7])
        out = aggregate(r, ())
        assert out.to_dict() == {(): 12}

    def test_scalar_aggregate_of_empty_relation(self):
        out = aggregate(rel(("a",), []), ())
        assert out.tuples == [()]
        assert list(out.annotations) == [0]

    def test_wraparound_cancellation(self):
        r = rel(("a",), [(1,), (1,)], [5, RING.modulus - 5])
        out = aggregate(r, ("a",))
        assert out.to_dict() == {}  # zero group dropped by to_dict

    def test_identity_projection_merges_duplicates(self):
        r = rel(("a",), [(1,), (1,)], [2, 3])
        out = aggregate(r, ("a",))
        assert len(out) == 1 and out.to_dict() == {(1,): 5}


class TestSupportProjection:
    def test_drops_zero_annotated(self):
        r = rel(("a", "b"), [(1, 1), (2, 2), (1, 3)], [0, 4, 6])
        out = support_projection(r, ("a",))
        assert out.to_dict() == {(2,): 1, (1,): 1}

    def test_annotations_reset_to_one(self):
        r = rel(("a",), [(1,)], [99])
        assert list(support_projection(r, ("a",)).annotations) == [1]


class TestJoin:
    def test_natural_join_products(self):
        r1 = rel(("a", "b"), [(1, 2), (3, 4)], [2, 3])
        r2 = rel(("b", "c"), [(2, 5), (2, 6), (4, 7)], [10, 20, 30])
        out = join(r1, r2)
        assert out.to_dict() == {(1, 2, 5): 20, (1, 2, 6): 40, (3, 4, 7): 90}
        assert out.attributes == ("a", "b", "c")

    def test_cartesian_when_no_shared_attrs(self):
        r1 = rel(("a",), [(1,), (2,)])
        r2 = rel(("b",), [(3,)])
        assert len(join(r1, r2)) == 2

    def test_join_rejects_semiring_mismatch(self):
        r1 = rel(("a",), [(1,)])
        r2 = AnnotatedRelation(("a",), [(1,)], None, IntegerRing(8))
        with pytest.raises(ValueError):
            join(r1, r2)

    def test_join_with_empty(self):
        r1 = rel(("a",), [(1,)])
        assert len(join(r1, rel(("a",), []))) == 0


class TestSemijoin:
    def test_keeps_matching_preserving_annotations(self):
        r1 = rel(("a", "b"), [(1, 2), (3, 4)], [7, 8])
        r2 = rel(("b", "c"), [(2, 9)], [1])
        out = semijoin(r1, r2)
        assert out.to_dict() == {(1, 2): 7}

    def test_zero_annotated_filter_tuples_do_not_count(self):
        r1 = rel(("a",), [(1,), (2,)], [5, 5])
        r2 = rel(("a",), [(1,), (2,)], [0, 3])
        assert semijoin(r1, r2).to_dict() == {(2,): 5}

    def test_duplicate_filter_values_no_duplication(self):
        r1 = rel(("a",), [(1,)], [5])
        r2 = rel(("a", "b"), [(1, 1), (1, 2)], [1, 1])
        out = semijoin(r1, r2)
        assert len(out) == 1 and out.to_dict() == {(1,): 5}


class TestSelection:
    def test_select_shrinks(self):
        r = rel(("a",), [(1,), (2,), (3,)], [1, 2, 3])
        out = select(r, lambda row: row["a"] >= 2)
        assert len(out) == 2

    def test_select_with_dummies_keeps_size(self):
        r = rel(("a",), [(1,), (2,), (3,)], [1, 2, 3])
        out = select_with_dummies(r, lambda row: row["a"] >= 2)
        assert len(out) == 3
        assert out.to_dict() == {(2,): 2, (3,): 3}

    def test_map_annotations(self):
        r = rel(("a",), [(2,), (3,)])
        out = map_annotations(r, lambda row, v: row["a"] * 10)
        assert list(out.annotations) == [20, 30]


@st.composite
def small_relation(draw, attrs):
    n = draw(st.integers(0, 8))
    tuples = [
        tuple(draw(st.integers(0, 3)) for _ in attrs) for _ in range(n)
    ]
    annots = [draw(st.integers(0, 30)) for _ in range(n)]
    return AnnotatedRelation(attrs, tuples, annots, RING)


class TestAlgebraicProperties:
    @given(r1=small_relation(("a", "b")), r2=small_relation(("b", "c")))
    def test_join_commutes_semantically(self, r1, r2):
        assert join(r1, r2).semantically_equal(join(r2, r1))

    @given(r=small_relation(("a", "b")))
    def test_aggregate_preserves_total(self, r):
        total = aggregate(r, ())
        regrouped = aggregate(aggregate(r, ("a",)), ())
        assert total.semantically_equal(regrouped)

    @given(r1=small_relation(("a", "b")), r2=small_relation(("b",)))
    def test_semijoin_is_join_with_support(self, r1, r2):
        direct = semijoin(r1, r2)
        via_def = join(r1, support_projection(r2, ("b",)))
        assert direct.semantically_equal(via_def)

    @given(
        r1=small_relation(("a",)),
        r2=small_relation(("a", "b")),
        r3=small_relation(("b",)),
    )
    def test_join_associative(self, r1, r2, r3):
        left = join(join(r1, r2), r3)
        right = join(r1, join(r2, r3))
        assert left.semantically_equal(right)

    @given(r=small_relation(("a", "b")))
    def test_aggregation_distributes_over_projection_chain(self, r):
        one_step = aggregate(r, ("a",))
        # Aggregating an aggregate over the same attrs is idempotent.
        assert one_step.semantically_equal(aggregate(one_step, ("a",)))
