"""A 5-relation walkthrough in the spirit of the paper's Example 3.2:
reduce folds the lower part of the tree, a stopped node aggregates away
its non-output attribute, and the semijoin + full-join phases run over
the surviving output-only relations."""

import numpy as np
import pytest

from repro.core import SecureRelation, secure_yannakakis
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
    is_free_connex,
)
from repro.yannakakis import (
    ReduceAggregate,
    ReduceFold,
    build_plan,
    naive_join_aggregate,
)

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)

SCHEMA = {
    "R1": ("A", "B"),
    "R2": ("A", "C"),
    "R3": ("B", "D", "E"),
    "R4": ("D", "F", "G"),
    "R5": ("D", "E", "F"),
}
OUTPUT = ("B", "D", "E", "F")


def make_instance(seed=11):
    rng = np.random.default_rng(seed)
    rels = {}
    for name, attrs in SCHEMA.items():
        n = int(rng.integers(3, 12))
        tuples = [
            tuple(int(v) for v in rng.integers(0, 3, len(attrs)))
            for _ in range(n)
        ]
        rels[name] = AnnotatedRelation(
            attrs, tuples, rng.integers(0, 9, n), RING
        )
    return rels


class TestStructure:
    def test_query_is_free_connex(self):
        h = Hypergraph(SCHEMA)
        assert h.is_acyclic()
        assert is_free_connex(h, set(OUTPUT))

    def test_plan_has_all_three_phases(self):
        h = Hypergraph(SCHEMA)
        tree = find_free_connex_tree(h, set(OUTPUT))
        plan = build_plan(tree, OUTPUT)
        folds = [s for s in plan.reduce_steps if isinstance(s, ReduceFold)]
        aggs = [
            s for s in plan.reduce_steps if isinstance(s, ReduceAggregate)
        ]
        # R2 and R1 fold away; G is aggregated out of R4.
        assert {f.child for f in folds} >= {"R2"}
        assert any("G" not in s.attrs for s in aggs)
        assert plan.semijoin_steps  # multiple output-only nodes remain
        assert plan.join_steps
        # Everything left is output-only.
        for attrs in plan.reduced_attrs.values():
            assert set(attrs) <= set(OUTPUT)

    def test_non_output_attrs_gone_before_semijoins(self):
        h = Hypergraph(SCHEMA)
        tree = find_free_connex_tree(h, set(OUTPUT))
        plan = build_plan(tree, OUTPUT)
        surviving = set().union(
            *(set(a) for a in plan.reduced_attrs.values())
        )
        assert surviving == set(OUTPUT)


class TestSemantics:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_plaintext_matches_naive(self, seed):
        from repro.yannakakis import yannakakis

        rels = make_instance(seed)
        got = yannakakis(rels, list(OUTPUT))
        expect = naive_join_aggregate(rels, list(OUTPUT))
        assert got.semantically_equal(expect)

    def test_secure_matches_naive(self):
        rels = make_instance(14)
        h = Hypergraph(SCHEMA)
        tree = find_free_connex_tree(h, set(OUTPUT))
        plan = build_plan(tree, OUTPUT)
        engine = Engine(Context(Mode.SIMULATED, seed=15), TEST_GROUP_BITS)
        owners = {
            name: (ALICE if i % 2 else BOB)
            for i, name in enumerate(sorted(SCHEMA))
        }
        sec = {
            n: SecureRelation.from_annotated(owners[n], rels[n])
            for n in rels
        }
        result, _ = secure_yannakakis(engine, sec, plan)
        expect = naive_join_aggregate(rels, list(OUTPUT))
        assert result.semantically_equal(expect)
