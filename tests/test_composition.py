"""Query composition (Section 7): avg, ratio-of-sums, differences."""

from functools import partial

import numpy as np
import pytest

from repro.core.composition import (
    align_shared,
    divide_compose,
    subtract_compose,
)
from repro.core.join import ObliviousJoinResult
from repro.mpc import ALICE, BOB, Mode
from repro.query import JoinAggregateQuery
from repro.relalg import AnnotatedRelation, IntegerRing
from repro.tpch.queries import to_signed

from .conftest import make_engine

RING = IntegerRing(32)


mk_engine = partial(make_engine, seed=13)


def shared_result(eng, attrs, rows, values):
    return ObliviousJoinResult(
        tuple(attrs), list(rows), eng.share(BOB, values)
    )


class TestAlign:
    def test_alignment_with_missing_groups(self):
        eng = mk_engine()
        res = shared_result(eng, ("g",), [(1,), (2,)], [10, 20])
        base = [(2,), (9,), (1,)]
        out = align_shared(eng, base, res)
        assert list(out.reconstruct()) == [20, 0, 10]

    def test_empty_base(self):
        eng = mk_engine()
        res = shared_result(eng, ("g",), [(1,)], [5])
        assert len(align_shared(eng, [], res)) == 0


@pytest.mark.parametrize("mode", [Mode.SIMULATED, Mode.REAL])
class TestDivide:
    def test_ratio_per_group(self, mode):
        eng = mk_engine(mode)
        num = shared_result(eng, ("g",), [(1,), (2,)], [10, 9])
        den = shared_result(eng, ("g",), [(2,), (1,)], [2, 5])
        out = divide_compose(eng, num, den)
        assert out.to_dict() == {(2,): 4, (1,): 2}

    def test_scale_for_fixed_point(self, mode):
        eng = mk_engine(mode)
        num = shared_result(eng, ("g",), [(1,)], [1])
        den = shared_result(eng, ("g",), [(1,)], [3])
        out = divide_compose(eng, num, den, scale=1000)
        assert out.to_dict() == {(1,): 333}

    def test_numerator_group_missing(self, mode):
        eng = mk_engine(mode)
        num = shared_result(eng, ("g",), [], np.zeros(0, dtype=np.int64))
        den = shared_result(eng, ("g",), [(1,)], [4])
        out = divide_compose(eng, num, den)
        # 0 / 4 = 0; zero annotations are dropped by to_dict
        assert out.to_dict() == {}

    def test_key_mismatch_rejected(self, mode):
        eng = mk_engine(mode)
        num = shared_result(eng, ("g",), [(1,)], [1])
        den = shared_result(eng, ("h",), [(1,)], [1])
        with pytest.raises(ValueError):
            divide_compose(eng, num, den)


class TestSubtract:
    def test_union_of_groups(self):
        eng = mk_engine()
        left = shared_result(eng, ("g",), [(1,), (2,)], [10, 7])
        right = shared_result(eng, ("g",), [(2,), (3,)], [3, 4])
        out = subtract_compose(eng, left, right)
        got = {
            t: to_signed(v, 32) for t, v in out.to_dict().items()
        }
        assert got == {(1,): 10, (2,): 4, (3,): -4}

    def test_column_order_reconciled(self):
        eng = mk_engine()
        left = shared_result(eng, ("g", "h"), [(1, 2)], [10])
        right = shared_result(eng, ("h", "g"), [(2, 1)], [4])
        out = subtract_compose(eng, left, right)
        assert out.to_dict() == {(1, 2): 6}

    def test_exact_cancellation_disappears(self):
        eng = mk_engine()
        left = shared_result(eng, ("g",), [(1,)], [5])
        right = shared_result(eng, ("g",), [(1,)], [5])
        assert subtract_compose(eng, left, right).to_dict() == {}


class TestEndToEndAvg:
    def test_secure_avg_matches_plaintext(self):
        rng = np.random.default_rng(2)
        stores = AnnotatedRelation(
            ("store", "region"),
            [(s, s % 2) for s in range(8)],
            None,
            RING,
        )
        rows = [(int(rng.integers(0, 8)), t) for t in range(60)]
        amounts = rng.integers(1, 500, 60)

        def build(kind):
            txns = AnnotatedRelation(
                ("store", "txn"),
                rows,
                amounts if kind == "sum" else None,
                RING,
            )
            return (
                JoinAggregateQuery(output=["region"])
                .add_relation("stores", stores, owner=ALICE)
                .add_relation("txns", txns, owner=BOB)
            )

        eng = mk_engine()
        sums = build("sum").run_secure_shared(eng)
        counts = build("count").run_secure_shared(eng)
        avg = divide_compose(eng, sums, counts)

        sum_p = build("sum").run_plain().to_dict()
        cnt_p = build("count").run_plain().to_dict()
        expect = {g: sum_p[g] // cnt_p[g] for g in cnt_p}
        assert avg.to_dict() == expect

    def test_intermediate_sums_never_revealed(self):
        """No reveal of the sum/count vectors appears in the transcript —
        only the divide's output."""
        eng = mk_engine()
        num = shared_result(eng, ("g",), [(1,)], [10])
        den = shared_result(eng, ("g",), [(1,)], [2])
        before = [
            m.label for m in eng.ctx.transcript.messages
        ]
        divide_compose(eng, num, den)
        new_labels = [
            m.label
            for m in eng.ctx.transcript.messages[len(before):]
        ]
        assert not any("reveal" in l for l in new_labels)
