"""The generic per-value decomposition of non-free-connex queries."""

import numpy as np
import pytest

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import JoinAggregateQuery
from repro.query.decompose import decompose_by_attribute, run_decomposed
from repro.relalg import AnnotatedRelation, IntegerRing

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


def q9_shaped_query():
    """Grouping by attributes from both ends of a chain — acyclic but
    not free-connex (the Q9 situation)."""
    rng = np.random.default_rng(4)
    supplier = AnnotatedRelation(
        ("sk", "nation"),
        [(s, s % 3) for s in range(9)],
        None,
        RING,
    )
    lineitem = AnnotatedRelation(
        ("sk", "ok"),
        [
            (int(rng.integers(0, 9)), int(rng.integers(0, 12)))
            for _ in range(40)
        ],
        rng.integers(1, 50, 40),
        RING,
    )
    orders = AnnotatedRelation(
        ("ok", "year"), [(o, 1995 + o % 3) for o in range(12)], None, RING
    )
    return (
        JoinAggregateQuery(output=["nation", "year"])
        .add_relation("supplier", supplier, owner=BOB)
        .add_relation("lineitem", lineitem, owner=ALICE)
        .add_relation("orders", orders, owner=BOB)
    )


class TestDecomposition:
    def test_original_is_not_free_connex(self):
        assert not q9_shaped_query().is_free_connex()

    def test_sub_queries_are_free_connex(self):
        parts = decompose_by_attribute(q9_shaped_query(), "nation", [0, 1, 2])
        assert len(parts) == 3
        for _value, sub in parts:
            assert sub.is_free_connex()

    def test_sub_queries_keep_full_size(self):
        q = q9_shaped_query()
        parts = decompose_by_attribute(q, "nation", [0])
        (_, sub), = parts
        # PRIVATE selection: the supplier relation stays 9 tuples
        assert len(sub.relations["supplier"]) == 9

    def test_requires_output_attribute(self):
        with pytest.raises(ValueError):
            decompose_by_attribute(q9_shaped_query(), "sk", [0])

    def test_unknown_attribute(self):
        with pytest.raises(ValueError):
            decompose_by_attribute(q9_shaped_query(), "ghost", [0])


class TestEndToEnd:
    def test_matches_naive_evaluation(self):
        q = q9_shaped_query()
        expect = q.run_naive()
        engine = Engine(Context(Mode.SIMULATED, seed=5), TEST_GROUP_BITS)
        got = run_decomposed(engine, q, "nation", [0, 1, 2])
        # reorder expected columns to (nation, year)
        perm = [expect.attributes.index(a) for a in got.attributes]
        expect_rows = {
            tuple(t[i] for i in perm): v for t, v in expect.to_dict().items()
        }
        assert got.to_dict() == expect_rows

    def test_per_value_traffic_identical(self):
        """Obliviousness across the decomposition: every sub-query's
        transcript has the same shape regardless of the fixed value's
        selectivity."""
        q = q9_shaped_query()
        parts = decompose_by_attribute(q, "nation", [0, 1, 2])
        prints = []
        for _value, sub in parts:
            engine = Engine(
                Context(Mode.SIMULATED, seed=6), TEST_GROUP_BITS
            )
            sub.run_secure_shared(engine)
            prints.append(engine.ctx.transcript.fingerprint())
        assert prints[0] == prints[1] == prints[2]
