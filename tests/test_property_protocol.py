"""Property-based tests of the full secure protocol and key invariants
(hypothesis-driven; SIMULATED mode for speed)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SecureRelation, secure_yannakakis
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.mpc.oep import oblivious_extended_permutation
from repro.mpc.ot import make_ot
from repro.mpc.sharing import share_vector
from repro.mpc.waksman import apply_network, benes_network, pad_permutation
from repro.relalg import (
    AnnotatedRelation,
    Hypergraph,
    IntegerRing,
    find_free_connex_tree,
)
from repro.yannakakis import build_plan, naive_join_aggregate

from .conftest import TEST_GROUP_BITS

RING = IntegerRing(32)


@st.composite
def two_relation_instance(draw):
    n1 = draw(st.integers(1, 6))
    n2 = draw(st.integers(1, 6))
    r1 = AnnotatedRelation(
        ("a", "b"),
        [
            (draw(st.integers(0, 2)), draw(st.integers(0, 2)))
            for _ in range(n1)
        ],
        [draw(st.integers(0, 9)) for _ in range(n1)],
        RING,
    )
    r2 = AnnotatedRelation(
        ("b", "c"),
        [
            (draw(st.integers(0, 2)), draw(st.integers(0, 2)))
            for _ in range(n2)
        ],
        [draw(st.integers(0, 9)) for _ in range(n2)],
        RING,
    )
    output = draw(st.sampled_from([(), ("b",), ("a", "b")]))
    owners = draw(
        st.sampled_from(
            [
                {"R1": ALICE, "R2": BOB},
                {"R1": BOB, "R2": ALICE},
                {"R1": ALICE, "R2": ALICE},
            ]
        )
    )
    return r1, r2, output, owners


@given(instance=two_relation_instance())
def test_secure_protocol_equals_naive(instance):
    r1, r2, output, owners = instance
    rels = {"R1": r1, "R2": r2}
    h = Hypergraph({n: r.attributes for n, r in rels.items()})
    tree = find_free_connex_tree(h, set(output))
    plan = build_plan(tree, output)
    engine = Engine(Context(Mode.SIMULATED, seed=0), TEST_GROUP_BITS)
    sec = {
        n: SecureRelation.from_annotated(owners[n], rels[n])
        for n in rels
    }
    result, _ = secure_yannakakis(engine, sec, plan)
    expect = naive_join_aggregate(rels, list(output))
    assert result.semantically_equal(expect)


@given(
    perm=st.permutations(list(range(9))),
)
def test_benes_routes_any_permutation(perm):
    padded = pad_permutation(list(perm))
    routed = apply_network(benes_network(padded), list(range(len(padded))))
    for i, p in enumerate(padded):
        assert routed[p] == i


@given(
    values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=12),
    data=st.data(),
)
def test_oep_matches_numpy_take(values, data):
    n_out = data.draw(st.integers(1, 12))
    xi = [
        data.draw(st.integers(0, len(values) - 1)) for _ in range(n_out)
    ]
    ctx = Context(Mode.SIMULATED, seed=1)
    ot = make_ot(ctx, TEST_GROUP_BITS)
    sv = share_vector(ctx, ALICE, values)
    out = oblivious_extended_permutation(ctx, ot, xi, sv, n_out)
    expect = np.asarray(values, dtype=np.uint64)[np.asarray(xi)]
    assert (out.reconstruct() == expect).all()


@given(
    values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=20),
    data=st.data(),
)
def test_merge_chain_invariant(values, data):
    """Positions flagged 'same as next' always emit 0; group totals
    appear exactly once per group, and the grand total is preserved."""
    n = len(values)
    same = [data.draw(st.booleans()) for _ in range(n - 1)]
    engine = Engine(Context(Mode.SIMULATED, seed=2), TEST_GROUP_BITS)
    v = engine.share(BOB, values)
    out = engine.merge_aggregate_sum(same, v).reconstruct()
    mod = engine.ctx.modulus
    for i, flag in enumerate(same):
        if flag:
            assert out[i] == 0
    assert int(out.sum()) % mod == sum(values) % mod
