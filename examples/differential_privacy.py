#!/usr/bin/env python
"""Protecting the query results themselves (Section 7, last extension).

The 2PC protocol hides everything but the result; if the result itself
is sensitive, differential privacy adds calibrated noise *inside the
protocol* so that Alice only ever sees the perturbed aggregate.

Following the paper's sketch for join-count queries (after Johnson et
al.): each party finds the maximum multiplicity of the join attribute
in its relation, the sensitivity is their (jointly computed) product,
and Bob adds discrete-Laplace noise to his *share* before the reveal.
"""

import numpy as np

from repro import ALICE, BOB, AnnotatedRelation, Context, Engine, Mode
from repro.core.dp import dp_reveal, joint_sensitivity, max_multiplicity
from repro.query import JoinAggregateQuery
from repro.tpch.queries import to_signed

rng = np.random.default_rng(5)

# How many patients visited a clinic run by each operator?  Alice is a
# health authority; Bob runs the clinics.
patients = AnnotatedRelation(
    ("patient", "city"),
    [(p, int(rng.integers(0, 4))) for p in range(200)],
)
visits = AnnotatedRelation(
    ("patient", "clinic"),
    [
        (int(rng.integers(0, 200)), int(rng.integers(0, 6)))
        for _ in range(500)
    ],
)

query = (
    JoinAggregateQuery(output=[])  # a pure count
    .add_relation("patients", patients, owner=ALICE)
    .add_relation("visits", visits, owner=BOB)
)

ctx = Context(Mode.SIMULATED, seed=8)
engine = Engine(ctx)

# The count stays in shared form...
shared = query.run_secure_shared(engine)

# ...the parties agree on the sensitivity (max join multiplicities)...
delta = joint_sensitivity(
    engine,
    max_multiplicity(patients, ["patient"]),
    max_multiplicity(visits, ["patient"]),
)
print(f"sensitivity Delta = {delta}")

# ...and Bob salts his share with Laplace(Delta/epsilon) noise before
# the reveal.
for epsilon in (0.1, 1.0, 10.0):
    noisy = dp_reveal(engine, shared.annotations, delta, epsilon)
    value = to_signed(int(noisy.sum()), ctx.params.ell)
    print(f"epsilon={epsilon:>5}: released count = {value}")

true_count = int(query.run_plain().to_dict().get((), 0))
print(f"true count (never revealed in the DP runs) = {true_count}")
