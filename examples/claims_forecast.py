#!/usr/bin/env python
"""Flagship scenario: the paper's motivating example at realistic size.

An insurance company (Alice) holds customers and a disease taxonomy; a
hospital (Bob) holds treatment records.  Alice wants expected payouts
**grouped by disease class**, restricted to customers in one state,
with the released aggregates protected by differential privacy — every
Section 7 extension in one pipeline:

1. a BOUNDED-selectivity selection on Alice's customers,
2. the secure Yannakakis protocol with results kept in shared form,
3. DP noise added to Bob's shares before the reveal.
"""

import numpy as np

from repro import ALICE, BOB, AnnotatedRelation, Context, Engine, Mode
from repro.core import SelectionPolicy, apply_selection
from repro.core.dp import dp_reveal, joint_sensitivity, max_multiplicity
from repro.query import JoinAggregateQuery
from repro.tpch.queries import to_signed

rng = np.random.default_rng(2021)

N_CUSTOMERS, N_RECORDS = 600, 2500
STATES = ["NY", "CA", "TX", "WA"]
DISEASES = {
    "flu": "respiratory", "cold": "respiratory", "asthma": "respiratory",
    "fracture": "trauma", "burn": "trauma",
    "malaria": "tropical", "dengue": "tropical",
}

# --- Alice ---------------------------------------------------------------
customers = AnnotatedRelation(
    ("person", "state"),
    [(p, STATES[int(rng.integers(0, 4))]) for p in range(N_CUSTOMERS)],
    # annotation: the insurer's share in percent, 100*(1-coinsurance)
    rng.integers(50, 95, N_CUSTOMERS).astype(np.int64),
)
taxonomy = AnnotatedRelation(
    ("disease", "cls"), list(DISEASES.items())
)

# --- Bob -----------------------------------------------------------------
disease_names = list(DISEASES)
records = AnnotatedRelation(
    ("person", "disease", "visit"),
    [
        (
            int(rng.integers(0, N_CUSTOMERS + 200)),  # some non-customers
            disease_names[int(rng.integers(0, len(disease_names)))],
            v,
        )
        for v in range(N_RECORDS)
    ],
    rng.integers(50_00, 3_000_00, N_RECORDS).astype(np.int64),  # cents
)

# 1. Selection: only NY customers; an upper bound on the count may leak.
ny_customers = apply_selection(
    customers,
    lambda row: row["state"] == "NY",
    SelectionPolicy.BOUNDED,
    bound=N_CUSTOMERS // 3,
)

query = (
    JoinAggregateQuery(output=["cls"])
    .add_relation("customers", ny_customers, owner=ALICE)
    .add_relation("records", records, owner=BOB)
    .add_relation("taxonomy", taxonomy, owner=ALICE)
)
print("plan:")
print(query.plan().describe())

# 2. Secure evaluation, results kept shared.
engine = Engine(Context(Mode.SIMULATED, seed=3))
shared = query.run_secure_shared(engine)
print(f"\n{len(shared.tuples)} disease classes in the (revealed) group list")

# 3. DP release: sensitivity from max join multiplicities, noise on
#    Bob's shares.
delta = joint_sensitivity(
    engine,
    max_multiplicity(ny_customers, ["person"]),
    max_multiplicity(records, ["person"]),
)
epsilon = 1.0
noisy = dp_reveal(engine, shared.annotations, delta, epsilon)

print(f"\nsensitivity={delta}, epsilon={epsilon}")
print("forecast payout by class (DP-noised, dollars):")
for t, v in sorted(zip(shared.tuples, noisy), key=str):
    dollars = to_signed(int(v), engine.ctx.params.ell) / 100 / 100
    print(f"  {t[0]:<12} ~{dollars:>12,.0f}")

exact = query.run_plain().to_dict()
print("\nexact values (never revealed in the DP run, shown for reference):")
for t, v in sorted(exact.items(), key=str):
    print(f"  {t[0]:<12}  {v / 100 / 100:>12,.0f}")

print(f"\nprotocol: {engine.ctx.transcript.total_bytes:,} bytes")
