#!/usr/bin/env python
"""Quickstart: the paper's Example 1.1.

An insurance company (Alice) holds R1(person, coinsurance, state) and
R3(disease, class); a hospital (Bob) holds R2(person, disease, cost).
They jointly evaluate

    select class, sum(cost * (1 - coinsurance))
    from R1, R2, R3
    where R1.person = R2.person and R2.disease = R3.disease
    group by class

without revealing anything beyond the result (to Alice) and the input
sizes.  Annotations encode the aggregate: R1 carries
``100 * (1 - coinsurance)`` (percent), R2 carries ``cost``, R3 carries 1.
"""

from repro import ALICE, BOB, AnnotatedRelation, Context, Engine, Mode
from repro.query import JoinAggregateQuery

# --- Alice's data -------------------------------------------------------
insurance = AnnotatedRelation(
    ("person", "coinsurance", "state"),
    [
        ("ada", 20, "NY"),
        ("bob", 50, "CA"),
        ("eve", 10, "TX"),
    ],
    # annotation: 100 * (1 - coinsurance), i.e. the insurer's share in %
    [80, 50, 90],
)
disease_classes = AnnotatedRelation(
    ("disease", "class"),
    [("flu", "respiratory"), ("cold", "respiratory"), ("malaria", "tropical")],
)

# --- Bob's data ---------------------------------------------------------
medical_records = AnnotatedRelation(
    ("person", "disease", "cost"),
    [
        ("ada", "flu", 1000),
        ("ada", "cold", 300),
        ("bob", "flu", 2000),
        ("carl", "malaria", 7000),  # not an insurance customer
    ],
    annotations=[1000, 300, 2000, 7000],  # annotation = cost
)

query = (
    JoinAggregateQuery(output=["class"])
    .add_relation("insurance", insurance, owner=ALICE)
    .add_relation("records", medical_records, owner=BOB)
    .add_relation("classes", disease_classes, owner=ALICE)
)

print("free-connex:", query.is_free_connex())
print("plan:")
print(query.plan().describe())
print()

# The secure run.  Mode.REAL executes genuine cryptography (garbled
# circuits, OT extension, PSI); Mode.SIMULATED computes identically and
# meters identical traffic, instantly.
ctx = Context(Mode.REAL, seed=42)
engine = Engine(ctx)
result, stats = query.run_secure(engine)

print("result (revealed to Alice):")
for row, value in sorted(result, key=str):
    print(f"  class={row[0]:<12} payout = {value / 100:.2f}")
print()
print(
    f"protocol: {stats.seconds:.2f}s, "
    f"{stats.total_bytes:,} bytes, {stats.rounds} rounds"
)

expected = query.run_plain()
assert result.semantically_equal(expected), "secure != plaintext!"
print("matches plaintext evaluation: yes")
