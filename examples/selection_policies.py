#!/usr/bin/env python
"""Selection conditions and the privacy/cost trade-off (Section 7).

A bank (Alice) wants the total exposure of loans to customers of a
partner broker (Bob), restricted to one state.  How should the
selection ``state = 'NY'`` be applied before the protocol?

* If the number of NY customers is public, filter first — cheapest.
* If it must stay private, keep the relation at full size (dummies).
* If an upper bound may be disclosed, filter and pad to the bound.

The protocol cost follows the relation size the other party observes —
this script measures all three.
"""

import numpy as np

from repro import ALICE, BOB, AnnotatedRelation, Context, Engine, Mode
from repro.core import SelectionPolicy, apply_selection
from repro.query import JoinAggregateQuery

rng = np.random.default_rng(17)

N_CUSTOMERS = 400
states = ["NY" if rng.random() < 0.1 else "CA" for _ in range(N_CUSTOMERS)]
customers = AnnotatedRelation(
    ("cust", "state"), [(c, states[c]) for c in range(N_CUSTOMERS)]
)
loans = AnnotatedRelation(
    ("cust", "loan"),
    [(int(rng.integers(0, N_CUSTOMERS)), l) for l in range(900)],
    rng.integers(1_000, 250_000, 900).astype(np.int64),
)

true_ny = sum(1 for s in states if s == "NY")
print(f"{true_ny} of {N_CUSTOMERS} customers are in NY (Alice-private)\n")

results = {}
for policy, bound in [
    (SelectionPolicy.PUBLIC, None),
    (SelectionPolicy.BOUNDED, 80),
    (SelectionPolicy.PRIVATE, None),
]:
    filtered = apply_selection(
        customers, lambda row: row["state"] == "NY", policy, bound
    )
    query = (
        JoinAggregateQuery(output=[])
        .add_relation("customers", filtered, owner=ALICE)
        .add_relation("loans", loans, owner=BOB)
    )
    engine = Engine(Context(Mode.SIMULATED, seed=1))
    result, stats = query.run_secure(engine)
    total = result.to_dict().get((), 0)
    results[policy] = total
    print(
        f"{policy.value:>8}: Bob sees |customers| = {len(filtered):>4}, "
        f"protocol = {stats.total_bytes / 1e6:6.1f} MB, "
        f"exposure = {total:,}"
    )

assert len(set(results.values())) == 1, "all policies compute the same total"
print("\nsame answer under every policy; only size disclosure and cost differ.")
