#!/usr/bin/env python
"""Driving the protocol from SQL.

The same medical-insurance query as the quickstart, written as the SQL
of the paper's Example 1.1 and compiled automatically: equality
predicates become the join tree, the literal predicate becomes a
private selection (dummy tuples), and the SUM expression becomes the
annotations of the relation that carries its columns.
"""

from repro import ALICE, BOB, AnnotatedRelation, Context, Engine, Mode
from repro.query import compile_sql

insurance = AnnotatedRelation(
    ("person", "coinsurance", "state"),
    [("ada", 20, "NY"), ("bob", 50, "CA"), ("eve", 10, "NY")],
)
records = AnnotatedRelation(
    ("person", "disease", "cost"),
    [
        ("ada", "flu", 1000),
        ("ada", "cold", 300),
        ("bob", "flu", 2000),
        ("carl", "malaria", 7000),
    ],
)
classes = AnnotatedRelation(
    ("disease", "cls"),
    [("flu", "respiratory"), ("cold", "respiratory"), ("malaria", "tropical")],
)

SQL = """
SELECT cls, SUM(cost * (100 - 0))
FROM insurance, records, classes
WHERE insurance.person = records.person
  AND records.disease = classes.disease
  AND state = 'NY'
GROUP BY cls
"""

query = compile_sql(
    SQL,
    {"insurance": insurance, "records": records, "classes": classes},
    owners={"insurance": ALICE, "records": BOB, "classes": ALICE},
)

print("compiled plan:")
print(query.plan().describe())
print()

engine = Engine(Context(Mode.SIMULATED, seed=1))
result, stats = query.run_secure(engine)
print("result (x100, NY customers only):")
for row, value in sorted(result, key=str):
    print(f"  {row[0]:<12} {value / 100:,.0f}")
print(f"\n{stats.total_bytes:,} bytes over {stats.rounds} rounds")

assert result.semantically_equal(query.run_plain())
print("matches plaintext: yes")
