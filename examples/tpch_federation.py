#!/usr/bin/env python
"""A private data federation over TPC-H (the paper's Section 8 setup).

The relations of a 1 MB TPC-H database are split between two parties in
the worst possible way (owners alternate along the join tree) and the
paper's Q3 and Q10 are evaluated securely.  The script prints the costs
of secure Yannakakis next to the non-private evaluation and the exact
size of the garbled-circuit baseline the paper compares against.
"""

from repro.baselines import cartesian_gc_cost, gc_gate_rate
from repro.mpc import Engine, Mode
from repro.tpch import generate, prepare_q10, prepare_q3

SCALE_MB = 1

print(f"generating TPC-H data ({SCALE_MB} MB)...")
dataset = generate(SCALE_MB)
for name in ("customer", "orders", "lineitem"):
    print(f"  {name}: {dataset[name].n_rows} rows")
print()

for prepare in (prepare_q3, prepare_q10):
    query = prepare(dataset)
    print(f"=== {query.name}: {query.description} ===")
    plain, plain_seconds = query.run_plain()

    ctx = query.make_context(Mode.SIMULATED, seed=7)
    engine = Engine(ctx)
    result, stats = query.run_secure(engine)
    assert result.semantically_equal(plain)

    gc = cartesian_gc_cost(
        query.gc_sizes,
        query.gc_conditions,
        gate_rate=gc_gate_rate(),
        runs=query.gc_runs,
    )
    print(f"  result rows: {len(result)}")
    sample = sorted(result, key=str)[:3]
    for row, value in sample:
        print(f"    {row} -> {value / query.result_scale:,.2f}")
    print(f"  secure Yannakakis: {stats.seconds:6.2f}s   "
          f"{stats.total_bytes / 1e6:10.1f} MB")
    print(f"  non-private:       {plain_seconds:6.2f}s   "
          f"{query.effective_bytes / 1e6:10.3f} MB")
    print(f"  garbled circuit:   {gc.est_seconds / 86400:6.1f}d   "
          f"{gc.comm_bytes / 1e12:10.1f} TB   "
          f"({gc.and_gates:,} AND gates)")
    print()

print("the paper's headline, reproduced: linear-cost secure evaluation "
      "where the generic circuit needs days and terabytes.")
