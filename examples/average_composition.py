#!/usr/bin/env python
"""Query composition (Section 7): a secure AVG.

``avg`` is not expressible in any semiring, but it decomposes into a
``sum`` and a ``count`` query.  Crucially the two intermediate
aggregates must never be revealed — the protocol keeps them in shared
form and a per-group division circuit reveals only the quotient.

Scenario: a retailer (Alice) and a payment processor (Bob) compute the
average basket value per region without exposing per-region totals or
transaction counts.
"""

import numpy as np

from repro import ALICE, BOB, AnnotatedRelation, Context, Engine, Mode
from repro.core.composition import divide_compose
from repro.query import JoinAggregateQuery

rng = np.random.default_rng(11)

# Alice: stores and their regions.
stores = AnnotatedRelation(
    ("store", "region"),
    [(s, ["north", "south", "west"][s % 3]) for s in range(12)],
)

# Bob: transactions (store, txn id) with amounts in cents.
txn_rows = [
    (int(rng.integers(0, 12)), t) for t in range(300)
]
amounts = rng.integers(500, 20_000, len(txn_rows))


def build(kind: str) -> JoinAggregateQuery:
    annotations = amounts if kind == "sum" else np.ones(len(txn_rows))
    transactions = AnnotatedRelation(
        ("store", "txn"), txn_rows, annotations.astype(np.int64)
    )
    return (
        JoinAggregateQuery(output=["region"])
        .add_relation("stores", stores, owner=ALICE)
        .add_relation("transactions", transactions, owner=BOB)
    )


ctx = Context(Mode.SIMULATED, seed=3)
engine = Engine(ctx)

# Two protocol runs; both results stay secret-shared.
sums = build("sum").run_secure_shared(engine)
counts = build("count").run_secure_shared(engine)

# One division circuit per group; only the quotient is revealed.
averages = divide_compose(engine, sums, counts)

print("average basket value per region (only this is revealed):")
for (region,), cents in sorted(averages, key=str):
    print(f"  {region:<6} {cents / 100:8.2f}")

# Check against plaintext.
sum_plain = build("sum").run_plain().to_dict()
count_plain = build("count").run_plain().to_dict()
for (region,), cents in averages:
    expect = sum_plain[(region,)] // count_plain[(region,)]
    assert cents == expect, (region, cents, expect)
print("matches plaintext:", True)
print(f"communication: {ctx.transcript.total_bytes:,} bytes")
